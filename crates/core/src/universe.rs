//! T-equivalence classes of the Cartesian product.
//!
//! Two product tuples `t, t′ ∈ D = R × P` with `T(t) = T(t′)` are
//! interchangeable for inference: every join predicate selects either both
//! or neither, so labeling one immediately renders the other uninformative
//! (Lemmas 3.3–3.4). The paper exploits this observation when defining the
//! *join ratio* ("if two tuples are selected by the same most specific join
//! predicate, then they are basically equivalent w.r.t. the inference
//! process"). We push it further and make the equivalence classes the
//! primary data structure: a [`Universe`] partitions `D` into classes of
//! equal signature, and all strategies reason over classes weighted by
//! multiplicity. This is what makes TPC-H-scale products (10⁷–10⁸ tuples)
//! tractable: the number of *distinct* signatures stays small.
//!
//! # Construction: profile deduplication before pair enumeration
//!
//! [`Universe::build`] never walks the raw `|R| · |P|` product. It first
//! canonicalizes each row to its *join profile* — the row's symbol tuple
//! restricted to symbols occurring in the opposite relation (see
//! [`Instance::r_profile_key`]) — and deduplicates rows into weighted
//! distinct profiles. Two rows with equal profiles produce identical
//! signatures against every opposite row, so the pair loop only has to
//! visit `distinct_R · distinct_P` profile pairs, multiplying the two
//! profile counts into the class weight. Total cost:
//!
//! * `O(|R| · n + |P| · m)` hashing to deduplicate rows into profiles,
//! * `O(distinct_R · distinct_P · n)` symbol-map lookups for the remaining
//!   pair loop (`n = arity(R)`), using a per-P-profile index from value
//!   symbols to column masks,
//!
//! instead of the former `O(|R| · |P| · n)`. On duplicate-heavy instances
//! (the TPC-H regime the paper targets: 10⁷–10⁸ product tuples, a handful
//! of distinct signatures) this is orders of magnitude less work. When the
//! remaining profile-pair loop is still large it is parallelized with
//! `std::thread::scope` over R-profile chunks; the per-thread class tables
//! are merged in chunk order, so class ids, counts, and representatives are
//! **identical** to the sequential build. P relations of any arity are
//! supported: column masks are multi-word (`bitset::or_shifted`), not
//! capped at 64 attributes.
//!
//! The pre-deduplication row-pair loop is kept as
//! [`Universe::build_rowpair_reference`] — an executable specification used
//! by the equivalence property tests and as the baseline of the `scaling`
//! benchmark.

use jqi_relation::bitset::{hash_words, or_shifted, word_count, WORD_BITS};
use jqi_relation::{BitSet, Instance, Tuple};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Identifier of a T-equivalence class (an index into [`Universe`] tables).
pub type ClassId = usize;

/// Below this much profile-pair work, [`Universe::build`] stays
/// single-threaded: thread spawn/merge overhead would dominate.
const PARALLEL_THRESHOLD: u64 = 1 << 15;

/// The static `up`/`down` containment masks are materialized only while
/// `classes² ≤ STATIC_MASK_BITS_CAP` (two arenas of `classes²` bits each —
/// 8 MiB per arena at the cap). Above it, [`ClassClosure::members`] still
/// provides every mask on demand in `O(|Ω| · words)`; only the O(1) lookup
/// fast path is lost.
const STATIC_MASK_BITS_CAP: u64 = 1 << 26;

/// Below this much per-class mask work, the closure build stays
/// single-threaded.
const CLOSURE_PARALLEL_THRESHOLD: u64 = 1 << 18;

/// The containment order among T-equivalence classes, precomputed once per
/// [`Universe`] and shared read-only by every session.
///
/// The paper's certainty lemmas (3.3–3.4) and the entropy pair of §4.4 are
/// all functions of *signature containment*: a class becomes certain
/// exactly when its signature is contained in, or contains, the right
/// combination of labeled signatures and the interval bound `T(S⁺)`. That
/// order is fixed the moment the universe is built — so the closure
/// materializes it as bit masks **over class indices** and sessions reduce
/// their per-label work to word-ORs and popcounts over ≤ `|classes|` bits:
///
/// * [`ClassClosure::members`]`(b)` — the classes whose signature contains
///   Ω-bit `b`. From these, the down-set of any predicate restriction is
///   one union–complement per query (`{t : T(t) ∩ θ ⊆ X}` =
///   `¬⋃_{b ∈ θ∖X} members(b)`), which is what keeps mask inference
///   **exact** even after `T(S⁺)` has shrunk below Ω.
/// * [`ClassClosure::up`]`(c)` / [`ClassClosure::down`]`(c)` — the static
///   supersets/subsets of class `c`'s signature, the `θ = Ω` fast path
///   (empty and all-negative samples — in particular every first question):
///   one word-AND + popcount per certainty or gain query.
///
/// All masks have [`ClassClosure::mask_words`] words; bits at or above the
/// class count are zero in `members`/`down` and may be garbage in no mask —
/// callers AND with a live-class mask before iterating.
#[derive(Debug, Clone)]
pub struct ClassClosure {
    classes: usize,
    mask_words: usize,
    /// `members[b]`: stride-`mask_words` arena of per-Ω-bit class masks.
    members: Vec<u64>,
    /// Static superset masks (`sig(t) ⊇ sig(c)`), stride `mask_words`;
    /// `None` above the memory cap.
    up: Option<Vec<u64>>,
    /// Static subset masks (`sig(t) ⊆ sig(c)`), stride `mask_words`.
    down: Option<Vec<u64>>,
}

impl ClassClosure {
    /// Builds the closure for `sigs` over an Ω of `omega_len` bits.
    ///
    /// Cost: `O(Σ|sig|)` for the per-bit member masks plus — when the
    /// static masks fit the cap — `O(classes · |Ω| · mask_words)` word ops
    /// for `up`/`down`, parallelized over class chunks (each class's masks
    /// are computed independently, so the result is identical for every
    /// worker count).
    pub(crate) fn build(sigs: &[BitSet], omega_len: usize, threads: usize) -> ClassClosure {
        let classes = sigs.len();
        let mask_words = word_count(classes);
        let mut members = vec![0u64; omega_len * mask_words];
        for (c, sig) in sigs.iter().enumerate() {
            let (wi, bit) = (c / WORD_BITS, 1u64 << (c % WORD_BITS));
            for b in sig.iter() {
                members[b * mask_words + wi] |= bit;
            }
        }

        let statics = (classes as u64).pow(2) <= STATIC_MASK_BITS_CAP && classes > 0;
        let (up, down) = if statics {
            let mut up = vec![0u64; classes * mask_words];
            let mut down = vec![0u64; classes * mask_words];
            let fill = |c: ClassId, up_c: &mut [u64], down_c: &mut [u64]| {
                // up(c) = ⋂_{b ∈ sig(c)} members(b); the empty signature is
                // contained in everything, so start from all-ones.
                up_c.iter_mut().for_each(|w| *w = !0);
                for b in sigs[c].iter() {
                    let m = &members[b * mask_words..(b + 1) * mask_words];
                    up_c.iter_mut().zip(m).for_each(|(w, &v)| *w &= v);
                }
                // down(c) = ¬⋃_{b ∈ Ω∖sig(c)} members(b), clamped to the
                // live classes so iteration never sees phantom bits.
                for b in 0..omega_len {
                    if sigs[c].contains(b) {
                        continue;
                    }
                    let m = &members[b * mask_words..(b + 1) * mask_words];
                    down_c.iter_mut().zip(m).for_each(|(w, &v)| *w |= v);
                }
                down_c.iter_mut().for_each(|w| *w = !*w);
                clamp_mask(down_c, classes);
                clamp_mask(up_c, classes);
            };
            let work = classes as u64 * (omega_len as u64).max(1) * mask_words as u64;
            let threads = if work < CLOSURE_PARALLEL_THRESHOLD {
                1
            } else {
                threads.clamp(1, classes)
            };
            if threads <= 1 {
                for c in 0..classes {
                    // Split borrows: each class owns its stride in both arenas.
                    let up_c = &mut up[c * mask_words..(c + 1) * mask_words];
                    // Safe split via temporary take is unnecessary: down is a
                    // disjoint arena.
                    let down_c = &mut down[c * mask_words..(c + 1) * mask_words];
                    fill(c, up_c, down_c);
                }
            } else {
                let chunk = classes.div_ceil(threads);
                std::thread::scope(|s| {
                    let fill = &fill;
                    for (ci, (up_chunk, down_chunk)) in up
                        .chunks_mut(chunk * mask_words)
                        .zip(down.chunks_mut(chunk * mask_words))
                        .enumerate()
                    {
                        s.spawn(move || {
                            for (k, (up_c, down_c)) in up_chunk
                                .chunks_mut(mask_words)
                                .zip(down_chunk.chunks_mut(mask_words))
                                .enumerate()
                            {
                                fill(ci * chunk + k, up_c, down_c);
                            }
                        });
                    }
                });
            }
            (Some(up), Some(down))
        } else {
            (None, None)
        };

        ClassClosure {
            classes,
            mask_words,
            members,
            up,
            down,
        }
    }

    /// Appends the last class of `sigs` to the closure in place — the
    /// delta-maintenance patch path for a class *birth*.
    ///
    /// `sigs` must be the full post-birth signature list (the new class
    /// last, everything before it unchanged since the closure was built).
    /// O(classes · |Ω|-words) instead of the full `O(classes · |Ω| ·
    /// mask_words)` rebuild: the member masks gain one bit per signature
    /// bit, the new class's `up`/`down` strides are computed from them, and
    /// each existing class gains at most one bit (two subset tests). Falls
    /// back to a full rebuild when the mask stride grows (a 64-class word
    /// boundary) or the static-mask memory cap is crossed.
    pub(crate) fn push_class(&mut self, sigs: &[BitSet], omega_len: usize) {
        let c = self.classes;
        debug_assert_eq!(sigs.len(), c + 1);
        let statics_after = ((c + 1) as u64).pow(2) <= STATIC_MASK_BITS_CAP;
        if word_count(c + 1) != self.mask_words || self.has_static_masks() != statics_after {
            *self = ClassClosure::build(sigs, omega_len, 1);
            return;
        }
        let mw = self.mask_words;
        let sig = &sigs[c];
        let (wi, bit) = (c / WORD_BITS, 1u64 << (c % WORD_BITS));
        for b in sig.iter() {
            self.members[b * mw + wi] |= bit;
        }
        self.classes = c + 1;
        if let (Some(up), Some(down)) = (self.up.as_mut(), self.down.as_mut()) {
            up.resize((c + 1) * mw, 0);
            down.resize((c + 1) * mw, 0);
            {
                let up_c = &mut up[c * mw..(c + 1) * mw];
                up_c.iter_mut().for_each(|w| *w = !0);
                for b in sig.iter() {
                    let m = &self.members[b * mw..(b + 1) * mw];
                    up_c.iter_mut().zip(m).for_each(|(w, &v)| *w &= v);
                }
                clamp_mask(up_c, c + 1);
            }
            {
                let down_c = &mut down[c * mw..(c + 1) * mw];
                for b in 0..omega_len {
                    if sig.contains(b) {
                        continue;
                    }
                    let m = &self.members[b * mw..(b + 1) * mw];
                    down_c.iter_mut().zip(m).for_each(|(w, &v)| *w |= v);
                }
                down_c.iter_mut().for_each(|w| *w = !*w);
                clamp_mask(down_c, c + 1);
            }
            for (t, sig_t) in sigs.iter().enumerate().take(c) {
                if sig_t.is_subset(sig) {
                    up[t * mw + wi] |= bit;
                }
                if sig.is_subset(sig_t) {
                    down[t * mw + wi] |= bit;
                }
            }
        }
    }

    /// Words per class-index mask (`⌈classes / 64⌉`).
    #[inline]
    pub fn mask_words(&self) -> usize {
        self.mask_words
    }

    /// Number of classes the masks range over.
    #[inline]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The classes whose signature contains Ω-bit `b`.
    #[inline]
    pub fn members(&self, b: usize) -> &[u64] {
        &self.members[b * self.mask_words..(b + 1) * self.mask_words]
    }

    /// Whether the static `up`/`down` masks were materialized (see the
    /// memory cap in the type docs).
    #[inline]
    pub fn has_static_masks(&self) -> bool {
        self.up.is_some()
    }

    /// The classes whose signature contains `sig(c)` (including `c`), when
    /// materialized.
    #[inline]
    pub fn up(&self, c: ClassId) -> Option<&[u64]> {
        self.up
            .as_deref()
            .map(|a| &a[c * self.mask_words..(c + 1) * self.mask_words])
    }

    /// The classes whose signature is contained in `sig(c)` (including
    /// `c`), when materialized.
    #[inline]
    pub fn down(&self, c: ClassId) -> Option<&[u64]> {
        self.down
            .as_deref()
            .map(|a| &a[c * self.mask_words..(c + 1) * self.mask_words])
    }

    /// Resident size of the closure in bytes (shared once per universe, not
    /// per session).
    pub fn resident_bytes(&self) -> usize {
        (self.members.len()
            + self.up.as_ref().map_or(0, Vec::len)
            + self.down.as_ref().map_or(0, Vec::len))
            * std::mem::size_of::<u64>()
    }
}

/// Zeroes the bits at or above `nbits` in a mask word slice.
#[inline]
fn clamp_mask(words: &mut [u64], nbits: usize) {
    let rem = nbits % WORD_BITS;
    if rem != 0 {
        if let Some(last) = words.last_mut() {
            *last &= (1u64 << rem) - 1;
        }
    }
}

/// Default byte budget of the [`Universe`] decision cache (see
/// [`Universe::with_decision_cache_budget`]).
pub const DEFAULT_DECISION_CACHE_BYTES: usize = 4 << 20;

/// A statistics snapshot of the universe-level decision cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionCacheStats {
    /// Probes answered from the cache.
    pub hits: u64,
    /// Probes that had to compute the move (including hash collisions whose
    /// exact-mask verification failed — those never return a cached value).
    pub misses: u64,
    /// Entries dropped by the LRU policy to stay inside the byte budget.
    pub evictions: u64,
    /// Live entries at sampling time.
    pub entries: usize,
    /// Estimated resident bytes of the cache at sampling time.
    pub bytes: usize,
    /// The configured byte budget (`0` = caching disabled).
    pub budget_bytes: usize,
}

/// Estimated per-entry overhead beyond the mask words: the slab node, the
/// key→slot map entry, and allocator slack.
const CACHE_ENTRY_OVERHEAD: usize = std::mem::size_of::<CacheEntry>() + 48;

/// When an insert pushes the cache past its budget, eviction frees down
/// to this many eighths of the budget in one batch, so the O(entries)
/// recency scan is amortized over many subsequent inserts instead of
/// re-running at the boundary on every miss.
const CACHE_EVICT_TO_EIGHTHS: usize = 7;

/// One memoized decision: the exact mask keys it was computed for, the
/// chosen candidate, and its recency stamp.
#[derive(Debug)]
struct CacheEntry {
    /// The full map key, kept so eviction can remove the map entry.
    key: (u64, u64),
    /// Exact `T(S⁺)` mask words (empty while `θ = Ω` — the normalized form
    /// of the whole negative phase).
    pos: Box<[u64]>,
    /// Exact negative-label class mask words.
    neg: Box<[u64]>,
    /// The memoized move (`None` = the strategy halted).
    value: Option<ClassId>,
    /// Last-touch tick of the cache clock. Atomic so the **hit** path can
    /// bump recency under the shared read lock — concurrent hits never
    /// contend with each other.
    stamp: AtomicU64,
}

impl CacheEntry {
    fn bytes(&self) -> usize {
        CACHE_ENTRY_OVERHEAD + (self.pos.len() + self.neg.len()) * std::mem::size_of::<u64>()
    }
}

/// The write-locked core of the decision cache: a slab of entries indexed
/// by `(strategy_key, mask hash)`. Recency lives in the per-entry atomic
/// stamps, not in this struct, so reads never need the write lock.
#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<(u64, u64), u32>,
    slab: Vec<CacheEntry>,
    free: Vec<u32>,
    bytes: usize,
}

impl CacheInner {
    /// Evicts least-recently-stamped entries until `bytes ≤ target`;
    /// returns how many were dropped. Runs under the write lock, so the
    /// stamps are quiescent and the scan sees a consistent recency order.
    fn evict_down_to(&mut self, target: usize) -> u64 {
        let mut order: Vec<(u64, u32)> = self
            .map
            .values()
            .map(|&slot| (self.slab[slot as usize].stamp.load(Ordering::Relaxed), slot))
            .collect();
        order.sort_unstable();
        let mut evicted = 0u64;
        for (_, slot) in order {
            if self.bytes <= target {
                break;
            }
            let e = &mut self.slab[slot as usize];
            let freed = e.bytes();
            let key = e.key;
            e.pos = Box::default();
            e.neg = Box::default();
            self.bytes -= freed;
            self.map.remove(&key);
            self.free.push(slot);
            evicted += 1;
        }
        evicted
    }
}

/// The universe-level **full-policy decision cache**: a bounded memo of
/// deterministic strategies' moves, shared by every session over one
/// universe.
///
/// Given the universe, a deterministic strategy's choice is a pure
/// function of the session's derived state, and the derived state is
/// itself a pure function of `(T(S⁺), negative-label class mask)` (plus
/// whether any positive exists at all — folded into the strategy
/// fingerprint): the open/certain partition, every gain pair, and the
/// inclusion–exclusion probabilities are all determined by those masks
/// (see the consistency argument on
/// [`Universe::cached_decision`]). A fleet of sessions over one universe
/// is therefore a walk over one shared decision structure, and the cache
/// makes each distinct state's strategy work — for deep lookahead, by far
/// the most expensive part of a session — a one-time cost per universe
/// instead of per session.
///
/// The map is keyed by `(strategy fingerprint, 64-bit mask hash)` for
/// cheap probes, but every entry stores the **exact** mask words and a hit
/// is only returned after comparing them — a hash collision degrades to a
/// miss, never to a wrong move.
///
/// Concurrency: the hot path (a fleet of sessions hitting warm entries)
/// takes only the **read** lock — recency is bumped through the entry's
/// atomic stamp, so hits proceed in parallel and never serialize on a
/// mutex. Misses take the write lock once to insert. Memory is bounded by
/// a byte budget with exact-LRU batch eviction (oldest stamps first, down
/// to ⅞ of the budget — a small batch, not a drop-all cliff); a budget of
/// `0` disables caching entirely.
#[derive(Debug)]
pub(crate) struct DecisionCache {
    budget: usize,
    inner: RwLock<CacheInner>,
    /// Monotone recency clock; every probe draws a fresh tick.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl DecisionCache {
    fn new(budget: usize) -> DecisionCache {
        DecisionCache {
            budget,
            inner: RwLock::new(CacheInner::default()),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Probes for `key`; `Some(move)` only when the exact masks match.
    /// Read lock only — see the type docs.
    fn lookup(&self, key: (u64, u64), pos: &[u64], neg: &[u64]) -> Option<Option<ClassId>> {
        let inner = self.inner.read().expect("decision cache poisoned");
        if let Some(&slot) = inner.map.get(&key) {
            let e = &inner.slab[slot as usize];
            if &*e.pos == pos && &*e.neg == neg {
                let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
                e.stamp.store(tick, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(e.value);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Records a computed move, batch-evicting the least recent entries
    /// when the byte budget is exceeded. An existing entry under the same
    /// key (a racing compute, or a hash collision) is overwritten — for
    /// races the values agree, and for collisions exact verification
    /// keeps either resident value safe.
    fn insert(&self, key: (u64, u64), pos: &[u64], neg: &[u64], value: Option<ClassId>) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inner = self.inner.write().expect("decision cache poisoned");
        if let Some(&slot) = inner.map.get(&key) {
            let e = &mut inner.slab[slot as usize];
            let old = e.bytes();
            e.pos = pos.into();
            e.neg = neg.into();
            e.value = value;
            *e.stamp.get_mut() = tick;
            let new = e.bytes();
            inner.bytes = inner.bytes - old + new;
        } else {
            let entry = CacheEntry {
                key,
                pos: pos.into(),
                neg: neg.into(),
                value,
                stamp: AtomicU64::new(tick),
            };
            inner.bytes += entry.bytes();
            let slot = match inner.free.pop() {
                Some(slot) => {
                    inner.slab[slot as usize] = entry;
                    slot
                }
                None => {
                    inner.slab.push(entry);
                    (inner.slab.len() - 1) as u32
                }
            };
            inner.map.insert(key, slot);
        }
        if inner.bytes > self.budget {
            let target = self.budget / 8 * CACHE_EVICT_TO_EIGHTHS;
            let evicted = inner.evict_down_to(target);
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    fn stats(&self) -> DecisionCacheStats {
        let inner = self.inner.read().expect("decision cache poisoned");
        DecisionCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: inner.map.len(),
            bytes: inner.bytes,
            budget_bytes: self.budget,
        }
    }
}

impl Clone for DecisionCache {
    /// Cloning a universe starts an empty cache with the same budget:
    /// entries rebuild cheaply and class ids are identical either way.
    fn clone(&self) -> Self {
        DecisionCache::new(self.budget)
    }
}

/// The Cartesian product of an instance, partitioned into T-equivalence
/// classes.
#[derive(Debug, Clone)]
pub struct Universe {
    pub(crate) instance: Instance,
    /// Distinct signatures; `sigs[c]` is `T(t)` for every tuple of class `c`.
    pub(crate) sigs: Vec<BitSet>,
    /// `|T(t)|` per class, precomputed: the BU/TD orderings consult it on
    /// every step and popcounting the signature each time would dominate.
    pub(crate) sig_sizes: Vec<u32>,
    /// Number of product tuples in each class.
    pub(crate) counts: Vec<u64>,
    /// One representative `(ri, pi)` product tuple per class.
    pub(crate) reps: Vec<(u32, u32)>,
    /// Construction-time hash buckets (signature word-hash → candidate
    /// class ids), kept so [`Universe::class_of`] is O(1) expected instead
    /// of a linear scan over all signatures.
    pub(crate) buckets: HashMap<u64, Vec<u32>>,
    /// The precomputed containment order among classes (see
    /// [`ClassClosure`]): built once here, shared read-only by every
    /// session over this universe.
    pub(crate) closure: ClassClosure,
    /// The full-policy decision cache: deterministic strategies' memoized
    /// moves in both phases, shared by every session over this universe.
    pub(crate) decision_cache: DecisionCache,
    /// Number of distinct R-side / P-side join profiles the build
    /// enumerated (`|R|` / `|P|` for the reference build).
    pub(crate) distinct_r: usize,
    pub(crate) distinct_p: usize,
    /// Monotone edit-generation counter: 0 at construction, +1 per
    /// [`Universe::apply_delta`]. Folded into [`Universe::fingerprint`] so
    /// durable state stamped before a delta can never silently replay
    /// against the post-delta class ids, and into the decision-cache key so
    /// a cached move can never leak across a delta.
    pub(crate) epoch: u64,
    /// The live row/profile tables delta maintenance works on. `None` for
    /// universes built without them ([`Universe::apply_delta`] materializes
    /// them on demand when `rows_complete`; streaming builds opt in via
    /// `build_streaming_live`). Behind an `Arc` so cloning a universe stays
    /// cheap — `apply_delta` deep-clones before mutating.
    pub(crate) live: Option<std::sync::Arc<crate::delta::LiveTables>>,
    /// Whether `instance` holds the *complete* row multiset (true for
    /// [`Universe::build`]) or only profile representatives (streaming and
    /// post-delta universes). Gates the on-demand live-table rebuild.
    pub(crate) rows_complete: bool,
}

/// One distinct join profile of a relation side: its first (representative)
/// row and the number of rows that collapse into it. The streaming build
/// (`crate::ingest`) produces these directly from folded profile maps.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Profile {
    pub(crate) rep: u32,
    pub(crate) count: u64,
}

/// Deduplicates profile keys in first-occurrence order.
fn distinct_profiles(keys: impl Iterator<Item = Box<[u32]>>) -> Vec<Profile> {
    let mut ids: HashMap<Box<[u32]>, u32> = HashMap::new();
    let mut out: Vec<Profile> = Vec::new();
    for (row, key) in keys.enumerate() {
        match ids.entry(key) {
            Entry::Occupied(e) => out[*e.get() as usize].count += 1,
            Entry::Vacant(e) => {
                e.insert(out.len() as u32);
                out.push(Profile {
                    rep: row as u32,
                    count: 1,
                });
            }
        }
    }
    out
}

/// Treats every row as its own profile (the reference, no-dedup path).
fn row_profiles(rows: usize) -> Vec<Profile> {
    (0..rows)
        .map(|r| Profile {
            rep: r as u32,
            count: 1,
        })
        .collect()
}

/// Per-distinct-P-profile symbol index: raw value symbol → P-column mask.
///
/// Masks live in one arena with stride `pwords` words, so arbitrary P
/// arities are supported (no 64-column limit). Only symbols shared with R
/// are indexed — everything else can never match an R cell.
struct PIndex {
    pwords: usize,
    /// One map per distinct P profile, aligned with the profile list.
    maps: Vec<HashMap<u32, u32>>,
    masks: Vec<u64>,
}

impl PIndex {
    fn build(p_rows: &[Tuple], shared: &BitSet, p_profiles: &[Profile], m: usize) -> PIndex {
        let pwords = word_count(m);
        let mut maps = Vec::with_capacity(p_profiles.len());
        let mut masks: Vec<u64> = Vec::new();
        for profile in p_profiles {
            let mut map: HashMap<u32, u32> = HashMap::new();
            for (j, sym) in p_rows[profile.rep as usize].symbols().iter().enumerate() {
                if !shared.contains(sym.index()) {
                    continue;
                }
                let slot = match map.entry(sym.0) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        let slot = (masks.len() / pwords.max(1)) as u32;
                        masks.resize(masks.len() + pwords, 0);
                        *e.insert(slot)
                    }
                };
                let base = slot as usize * pwords;
                masks[base + j / 64] |= 1u64 << (j % 64);
            }
            maps.push(map);
        }
        PIndex {
            pwords,
            maps,
            masks,
        }
    }

    #[inline]
    fn mask(&self, slot: u32) -> &[u64] {
        let base = slot as usize * self.pwords;
        &self.masks[base..base + self.pwords]
    }
}

/// A growing table of distinct signatures with weights, representatives and
/// hash buckets. Threads build local tables; [`ClassTable::absorb`] merges
/// them deterministically.
#[derive(Default)]
struct ClassTable {
    sigs: Vec<BitSet>,
    counts: Vec<u64>,
    reps: Vec<(u32, u32)>,
    buckets: HashMap<u64, Vec<u32>>,
}

impl ClassTable {
    /// Records `count` product tuples with the signature in `words`; `rep`
    /// is used only if the signature is new.
    fn observe(&mut self, nbits: usize, words: &[u64], count: u64, rep: (u32, u32)) {
        let bucket = self.buckets.entry(hash_words(words)).or_default();
        for &cid in bucket.iter() {
            if self.sigs[cid as usize].words() == words {
                self.counts[cid as usize] += count;
                return;
            }
        }
        let cid = self.sigs.len() as u32;
        self.sigs.push(BitSet::from_words(nbits, words.to_vec()));
        self.counts.push(count);
        self.reps.push(rep);
        bucket.push(cid);
    }

    /// Merges a later chunk's table into this one. First-occurrence order
    /// is preserved because chunks are absorbed in chunk order.
    fn absorb(&mut self, other: ClassTable) {
        for ((sig, count), rep) in other.sigs.into_iter().zip(other.counts).zip(other.reps) {
            self.observe(sig.capacity(), sig.words(), count, rep);
        }
    }
}

/// The profile-pair kernel: classifies every `(r_profile, p_profile)` pair
/// of `r_chunk × p_profiles` into a local class table.
fn scan_chunk(
    r_rows: &[Tuple],
    r_chunk: &[Profile],
    p_profiles: &[Profile],
    pindex: &PIndex,
    nbits: usize,
    m: usize,
) -> ClassTable {
    let mut table = ClassTable::default();
    let mut scratch: Vec<u64> = vec![0; word_count(nbits)];
    for rp in r_chunk {
        let r_syms = r_rows[rp.rep as usize].symbols();
        for (pid, pp) in p_profiles.iter().enumerate() {
            scratch.iter_mut().for_each(|w| *w = 0);
            let pmap = &pindex.maps[pid];
            for (i, sym) in r_syms.iter().enumerate() {
                if let Some(&slot) = pmap.get(&sym.0) {
                    // Place the m-bit column mask at bit offset i·m.
                    or_shifted(&mut scratch, pindex.mask(slot), i * m);
                }
            }
            table.observe(nbits, &scratch, rp.count * pp.count, (rp.rep, pp.rep));
        }
    }
    table
}

impl Universe {
    /// Partitions the Cartesian product of `instance` into T-equivalence
    /// classes, deduplicating rows into weighted join profiles first and
    /// parallelizing the remaining profile-pair loop when it is large (see
    /// the module docs for the complexity budget).
    ///
    /// The result is deterministic: class ids follow the first-occurrence
    /// order of signatures over the (R-profile, P-profile) pair enumeration,
    /// regardless of thread count.
    pub fn build(instance: Instance) -> Self {
        let shared = instance.shared_symbols();
        let r_profiles = distinct_profiles(
            (0..instance.r().len()).map(|ri| instance.r_profile_key(ri, &shared)),
        );
        let p_profiles = distinct_profiles(
            (0..instance.p().len()).map(|pi| instance.p_profile_key(pi, &shared)),
        );
        let work = r_profiles.len() as u64 * p_profiles.len() as u64;
        let threads = if work < PARALLEL_THRESHOLD {
            1
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let mut u = Self::assemble(instance, shared, r_profiles, p_profiles, threads);
        u.rows_complete = true;
        u
    }

    /// [`Universe::build`] with an explicit worker count, exposed so the
    /// equivalence property tests (and benches) can force the parallel
    /// merge path on any machine.
    pub fn build_with_parallelism(instance: Instance, threads: usize) -> Self {
        let shared = instance.shared_symbols();
        let r_profiles = distinct_profiles(
            (0..instance.r().len()).map(|ri| instance.r_profile_key(ri, &shared)),
        );
        let p_profiles = distinct_profiles(
            (0..instance.p().len()).map(|pi| instance.p_profile_key(pi, &shared)),
        );
        let mut u = Self::assemble(instance, shared, r_profiles, p_profiles, threads);
        u.rows_complete = true;
        u
    }

    /// The pre-deduplication construction: walk every `(ri, pi)` row pair
    /// of the raw Cartesian product, exactly as the seed implementation
    /// did. `O(|R| · |P| · n)`. Kept as an executable specification (the
    /// property tests assert [`Universe::build`] is equivalent) and as the
    /// baseline the `scaling` benchmark measures speedups against.
    pub fn build_rowpair_reference(instance: Instance) -> Self {
        let shared = instance.shared_symbols();
        let r_profiles = row_profiles(instance.r().len());
        let p_profiles = row_profiles(instance.p().len());
        let mut u = Self::assemble(instance, shared, r_profiles, p_profiles, 1);
        u.rows_complete = true;
        u
    }

    pub(crate) fn assemble(
        instance: Instance,
        shared: BitSet,
        r_profiles: Vec<Profile>,
        p_profiles: Vec<Profile>,
        threads: usize,
    ) -> Self {
        let ps = instance.pairs();
        let m = ps.arity_p();
        let nbits = ps.len();
        let pindex = PIndex::build(instance.p().rows(), &shared, &p_profiles, m);
        let r_rows = instance.r().rows();

        let scan_threads = threads.clamp(1, r_profiles.len().max(1));
        let mut table = if scan_threads <= 1 {
            scan_chunk(r_rows, &r_profiles, &p_profiles, &pindex, nbits, m)
        } else {
            let chunk = r_profiles.len().div_ceil(scan_threads);
            let locals: Vec<ClassTable> = std::thread::scope(|s| {
                let handles: Vec<_> = r_profiles
                    .chunks(chunk)
                    .map(|r_chunk| {
                        let (p_profiles, pindex) = (&p_profiles, &pindex);
                        s.spawn(move || scan_chunk(r_rows, r_chunk, p_profiles, pindex, nbits, m))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("universe scan worker panicked"))
                    .collect()
            });
            let mut merged = ClassTable::default();
            for local in locals {
                merged.absorb(local);
            }
            merged
        };

        let sig_sizes = table.sigs.iter().map(|s| s.len() as u32).collect();
        table.buckets.shrink_to_fit();
        let closure = ClassClosure::build(&table.sigs, nbits, threads);
        Universe {
            instance,
            sigs: table.sigs,
            sig_sizes,
            counts: table.counts,
            reps: table.reps,
            buckets: table.buckets,
            closure,
            decision_cache: DecisionCache::new(DEFAULT_DECISION_CACHE_BYTES),
            distinct_r: r_profiles.len(),
            distinct_p: p_profiles.len(),
            epoch: 0,
            live: None,
            rows_complete: false,
        }
    }

    /// Replaces the decision cache with an empty one bounded by `bytes`
    /// (`0` disables caching entirely — every probe computes).
    ///
    /// Builder-style so call sites read
    /// `Universe::build(inst).with_decision_cache_budget(n)`; see also
    /// [`Universe::build_with_cache_budget`].
    pub fn with_decision_cache_budget(mut self, bytes: usize) -> Self {
        self.decision_cache = DecisionCache::new(bytes);
        self
    }

    /// [`Universe::build`] with an explicit decision-cache byte budget.
    pub fn build_with_cache_budget(instance: Instance, bytes: usize) -> Self {
        Self::build(instance).with_decision_cache_budget(bytes)
    }

    /// A statistics snapshot of the decision cache (hits, misses,
    /// evictions, resident bytes, budget).
    pub fn decision_cache_stats(&self) -> DecisionCacheStats {
        self.decision_cache.stats()
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Number of T-equivalence classes (the paper's `|N|`, plus possibly the
    /// ∅-signature class).
    pub fn num_classes(&self) -> usize {
        self.sigs.len()
    }

    /// Number of distinct R-side join profiles enumerated at construction
    /// (`|R|` for [`Universe::build_rowpair_reference`]).
    pub fn distinct_r_profiles(&self) -> usize {
        self.distinct_r
    }

    /// Number of distinct P-side join profiles enumerated at construction.
    pub fn distinct_p_profiles(&self) -> usize {
        self.distinct_p
    }

    /// The signature `T(t)` shared by all tuples of class `c`.
    #[inline]
    pub fn sig(&self, c: ClassId) -> &BitSet {
        &self.sigs[c]
    }

    /// All distinct signatures, indexed by class id.
    pub fn sigs(&self) -> &[BitSet] {
        &self.sigs
    }

    /// `|T(t)|` for class `c`, precomputed at construction.
    #[inline]
    pub fn sig_size(&self, c: ClassId) -> usize {
        self.sig_sizes[c] as usize
    }

    /// Number of product tuples in class `c`.
    #[inline]
    pub fn count(&self, c: ClassId) -> u64 {
        self.counts[c]
    }

    /// Per-class tuple counts, indexed by class id — the weight array the
    /// mask-based gain computations fold over.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The precomputed containment closure among classes.
    #[inline]
    pub fn closure(&self) -> &ClassClosure {
        &self.closure
    }

    /// The memoized move of a deterministic strategy at the derived state
    /// described by `(pos_mask, neg_mask)`, computing it with `compute` on
    /// the first probe and serving every later one from the shared
    /// decision cache.
    ///
    /// # Why the key is sufficient (the consistency argument)
    ///
    /// Fix the universe and a consistent sample `S`. The derived state
    /// every deterministic strategy reads is a pure function of
    /// `θ = T(S⁺)` and the set `N` of negatively labeled classes:
    ///
    /// * the certain-positive classes are `{t : θ ⊆ T(t)}` and the
    ///   certain-negative ones `⋃_{g∈N} {t : θ ∩ T(t) ⊆ T(g)}` (Lemmas
    ///   3.3–3.4) — functions of `(θ, N)` only;
    /// * a labeled class would be *certain* under its own label had it not
    ///   been labeled (each positive `p` has `θ ⊆ T(p)` since `θ` is the
    ///   intersection of positive signatures; each negative `g` trivially
    ///   satisfies `θ ∩ T(g) ⊆ T(g)`), so the **open mask** — the
    ///   complement of labeled-or-certain — does not depend on *which*
    ///   positives produced `θ`;
    /// * gains, entropies, and the inclusion–exclusion probabilities
    ///   iterate `N` only through unions/sums — order never matters.
    ///
    /// Hence the move is a function of `(θ, N)` — **almost**: strategies
    /// may branch on whether any positive exists at all (TD's phase
    /// switch), which `θ` does not capture when a positive's signature is
    /// all of Ω. Callers must fold that phase bit (and everything else the
    /// choice depends on: strategy identity, lookahead depth, count mode)
    /// into `strategy_key`. `pos_mask` must be the exact `θ` words,
    /// normalized to the **empty slice** while `θ = Ω`; `neg_mask` the
    /// exact negative-label class mask. Strategies whose choice depends on
    /// per-session data (a random seed, the history length) must not use
    /// the cache.
    ///
    /// The probe hashes the masks but a hit is verified against the exact
    /// stored words, so a hash collision can never change a move.
    /// Thread-safe; concurrent first probes may both compute, last insert
    /// wins (the value is deterministic, so the races agree).
    pub fn cached_decision(
        &self,
        strategy_key: u64,
        pos_mask: &[u64],
        neg_mask: &[u64],
        compute: impl FnOnce() -> Option<ClassId>,
    ) -> Option<ClassId> {
        if self.decision_cache.budget == 0 {
            return compute();
        }
        let key = (strategy_key, self.cache_mask_key(pos_mask, neg_mask));
        if let Some(value) = self.decision_cache.lookup(key, pos_mask, neg_mask) {
            return value;
        }
        let value = compute();
        self.decision_cache.insert(key, pos_mask, neg_mask, value);
        value
    }

    /// The mask half of the decision-cache key. The universe's epoch is
    /// folded in with its own odd multiplier: a post-delta universe probes
    /// a disjoint key space, so even a cache that (hypothetically) survived
    /// a delta could never serve a pre-delta move. In practice
    /// [`Universe::apply_delta`] also starts the new universe with an empty
    /// cache — the epoch in the key is defense in depth, and what the
    /// regression tests assert.
    fn cache_mask_key(&self, pos_mask: &[u64], neg_mask: &[u64]) -> u64 {
        hash_words(pos_mask).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ hash_words(neg_mask)
            ^ self.epoch.wrapping_mul(0xA24B_AED4_963E_E407)
    }

    /// A representative `(ri, pi)` product tuple of class `c` — the tuple a
    /// strategy actually shows to the user.
    #[inline]
    pub fn representative(&self, c: ClassId) -> (usize, usize) {
        let (ri, pi) = self.reps[c];
        (ri as usize, pi as usize)
    }

    /// Total number of product tuples, `|D|`.
    pub fn total_tuples(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `|Ω|`, the capacity of every predicate bitset.
    pub fn omega_len(&self) -> usize {
        self.instance.pairs().len()
    }

    /// The most specific predicate Ω as a bitset.
    pub fn omega(&self) -> BitSet {
        self.instance.pairs().omega()
    }

    /// A deterministic fingerprint of the class structure: `|Ω|`, the
    /// number of classes, and every class's signature words and tuple
    /// count, folded through the same multiply–xorshift mix as
    /// [`jqi_relation::bitset::hash_words`].
    ///
    /// Two universes share a fingerprint exactly when they assign the same
    /// class ids to the same signatures with the same weights — the
    /// precondition for a session history (class-id addressed) from one to
    /// replay correctly on the other. Durable state (WAL headers, spill
    /// segments, snapshot documents) stamps this value so a restore
    /// against the wrong universe fails loudly instead of replaying
    /// garbage. Stable across processes and platforms: no addresses, no
    /// randomized hashing, and `Universe::build` is deterministic.
    ///
    /// The [`Universe::epoch`] is folded in on top of the class-structure
    /// hash ([`Universe::content_fingerprint`]): even a delta that happens
    /// to restore the exact pre-delta class structure yields a fresh
    /// fingerprint, so durable state stamped before the delta always fails
    /// its restore check instead of replaying against reshuffled ids.
    pub fn fingerprint(&self) -> u64 {
        Self::fingerprint_at_epoch(self.content_fingerprint(), self.epoch)
    }

    /// The epoch-independent part of [`Universe::fingerprint`]: a hash of
    /// `|Ω|`, the class count, and every class's signature words and tuple
    /// count.
    pub fn content_fingerprint(&self) -> u64 {
        let mut acc: Vec<u64> = Vec::with_capacity(2 + 2 * self.sigs.len());
        acc.push(self.omega_len() as u64);
        acc.push(self.sigs.len() as u64);
        for (sig, &count) in self.sigs.iter().zip(self.counts.iter()) {
            acc.push(hash_words(sig.words()));
            acc.push(count);
        }
        hash_words(&acc)
    }

    /// Folds an epoch into a content fingerprint — exactly what
    /// [`Universe::fingerprint`] computes. Exposed so recovery code can
    /// probe whether a stamped fingerprint belongs to an *earlier epoch* of
    /// the serving universe and say so in its error message.
    pub fn fingerprint_at_epoch(content: u64, epoch: u64) -> u64 {
        hash_words(&[content, epoch])
    }

    /// The universe's edit generation: 0 at construction, bumped by one on
    /// every [`Universe::apply_delta`] (including empty deltas). Monotone
    /// along any chain of deltas; folded into [`Universe::fingerprint`] and
    /// the decision-cache key.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Finds the class of an arbitrary product tuple.
    ///
    /// O(1) expected: one signature computation plus a probe of the
    /// construction-time hash buckets (full equality is re-checked, so hash
    /// collisions are harmless).
    pub fn class_of(&self, ri: usize, pi: usize) -> Option<ClassId> {
        let sig = self.instance.signature(ri, pi);
        self.class_for_signature(&sig)
    }

    /// Finds the class carrying exactly `sig`, if any. O(1) expected (one
    /// bucket probe with exact re-check). This is how session migration
    /// maps a pre-delta class id to its post-delta id: signatures are the
    /// stable identity of a class, ids are not.
    pub fn class_for_signature(&self, sig: &BitSet) -> Option<ClassId> {
        let bucket = self.buckets.get(&hash_words(sig.words()))?;
        bucket
            .iter()
            .map(|&c| c as usize)
            .find(|&c| self.sigs[c] == *sig)
    }

    /// Iterates over `(class, signature, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &BitSet, u64)> + '_ {
        self.sigs
            .iter()
            .enumerate()
            .map(move |(c, s)| (c, s, self.counts[c]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::example_2_1;
    use jqi_relation::{InstanceBuilder, Value};

    #[test]
    fn example_2_1_has_twelve_singleton_classes() {
        // Figure 3: all 12 product tuples have pairwise distinct T values.
        let u = Universe::build(example_2_1());
        assert_eq!(u.num_classes(), 12);
        assert_eq!(u.total_tuples(), 12);
        assert!(u.iter().all(|(_, _, n)| n == 1));
    }

    #[test]
    fn signatures_match_direct_computation() {
        let u = Universe::build(example_2_1());
        let inst = u.instance();
        for (ri, pi) in inst.product() {
            let sig = inst.signature(ri, pi);
            let c = u.class_of(ri, pi).expect("every tuple has a class");
            assert_eq!(u.sig(c), &sig);
        }
    }

    #[test]
    fn duplicate_rows_collapse_into_classes() {
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        for _ in 0..3 {
            b.row_r(&[Value::int(1)]);
        }
        for _ in 0..2 {
            b.row_p(&[Value::int(1)]);
        }
        b.row_p(&[Value::int(2)]);
        let u = Universe::build(b.build().unwrap());
        // Two classes: {A=B} with 3·2=6 tuples, ∅ with 3·1=3 tuples.
        assert_eq!(u.num_classes(), 2);
        assert_eq!(u.total_tuples(), 9);
        let mut counts: Vec<u64> = u.counts.clone();
        counts.sort();
        assert_eq!(counts, vec![3, 6]);
        // The duplicated rows collapse into single profiles.
        assert_eq!(u.distinct_r_profiles(), 1);
        assert_eq!(u.distinct_p_profiles(), 2);
    }

    #[test]
    fn sig_sizes_match_popcounts() {
        let u = Universe::build(example_2_1());
        for c in 0..u.num_classes() {
            assert_eq!(u.sig_size(c), u.sig(c).len());
        }
    }

    #[test]
    fn representative_belongs_to_its_class() {
        let u = Universe::build(example_2_1());
        for c in 0..u.num_classes() {
            let (ri, pi) = u.representative(c);
            assert_eq!(&u.instance().signature(ri, pi), u.sig(c));
        }
    }

    #[test]
    fn wide_relations_cross_word_boundaries() {
        // n=3, m=60 → |Ω| = 180 bits, masks straddle word boundaries.
        let mut b = InstanceBuilder::new();
        let r_attrs: Vec<String> = (0..3).map(|i| format!("A{i}")).collect();
        let p_attrs: Vec<String> = (0..60).map(|j| format!("B{j}")).collect();
        let r_refs: Vec<&str> = r_attrs.iter().map(String::as_str).collect();
        let p_refs: Vec<&str> = p_attrs.iter().map(String::as_str).collect();
        b.relation_r("R", &r_refs);
        b.relation_p("P", &p_refs);
        b.row_r(&[Value::int(7), Value::int(8), Value::int(9)]);
        let p_row: Vec<Value> = (0..60)
            .map(|j| Value::int(if j % 2 == 0 { 7 } else { 9 }))
            .collect();
        b.row_p(&p_row);
        let u = Universe::build(b.build().unwrap());
        assert_eq!(u.num_classes(), 1);
        let sig = u.sig(0);
        let inst = u.instance();
        let direct = inst.signature(0, 0);
        assert_eq!(sig, &direct, "fast path must agree with naive signature");
        // Spot checks: A0 (=7) matches even B columns, A2 (=9) odd ones.
        assert!(sig.contains(inst.pair_index(0, 0)));
        assert!(!sig.contains(inst.pair_index(0, 1)));
        assert!(sig.contains(inst.pair_index(2, 1)));
        assert!(!sig.contains(inst.pair_index(1, 5)));
    }

    #[test]
    fn relations_wider_than_64_columns_are_supported() {
        // Regression for the former `m <= 64` assert-panic: P has 70
        // attributes, so each per-symbol column mask spans two words.
        let n = 2usize;
        let m = 70usize;
        let mut b = InstanceBuilder::new();
        let r_attrs: Vec<String> = (0..n).map(|i| format!("A{i}")).collect();
        let p_attrs: Vec<String> = (0..m).map(|j| format!("B{j}")).collect();
        let r_refs: Vec<&str> = r_attrs.iter().map(String::as_str).collect();
        let p_refs: Vec<&str> = p_attrs.iter().map(String::as_str).collect();
        b.relation_r("R", &r_refs);
        b.relation_p("P", &p_refs);
        b.row_r(&[Value::int(1), Value::int(2)]);
        b.row_r(&[Value::int(2), Value::int(3)]);
        // P rows hit columns on both sides of the 64-bit boundary.
        let p_row_a: Vec<Value> = (0..m)
            .map(|j| Value::int(if j == 0 || j == 65 { 1 } else { -1 }))
            .collect();
        let p_row_b: Vec<Value> = (0..m)
            .map(|j| Value::int(if j % 7 == 0 { 2 } else { 3 }))
            .collect();
        b.row_p(&p_row_a);
        b.row_p(&p_row_b);
        let u = Universe::build(b.build().unwrap());
        let inst = u.instance();
        assert_eq!(u.omega_len(), n * m);
        for (ri, pi) in inst.product() {
            let sig = inst.signature(ri, pi);
            let c = u.class_of(ri, pi).expect("class exists");
            assert_eq!(u.sig(c), &sig, "wide signature diverges at ({ri},{pi})");
        }
    }

    #[test]
    fn parallel_build_is_deterministic() {
        // Class ids, counts, and representatives must be identical to the
        // sequential build for every worker count.
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A1", "A2"]);
        b.relation_p("P", &["B1", "B2"]);
        for i in 0..40i64 {
            b.row_r_ints(&[i % 5, (i * 3) % 4]);
        }
        for j in 0..30i64 {
            b.row_p_ints(&[(j * 2) % 5, j % 3]);
        }
        let inst = b.build().unwrap();
        let seq = Universe::build_with_parallelism(inst.clone(), 1);
        for threads in [2, 3, 4, 7] {
            let par = Universe::build_with_parallelism(inst.clone(), threads);
            assert_eq!(
                seq.sigs, par.sigs,
                "signatures diverge at {threads} threads"
            );
            assert_eq!(
                seq.counts, par.counts,
                "counts diverge at {threads} threads"
            );
            assert_eq!(seq.reps, par.reps, "reps diverge at {threads} threads");
        }
    }

    #[test]
    fn dedup_build_matches_rowpair_reference() {
        // Duplicate-heavy instance: the deduplicated build must produce the
        // same signature/count multiset and total as the row-pair loop.
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A1", "A2"]);
        b.relation_p("P", &["B1"]);
        for i in 0..24i64 {
            b.row_r_ints(&[i % 3, (i % 2) + 100]); // second column unmatchable
        }
        for j in 0..18i64 {
            b.row_p_ints(&[j % 4]);
        }
        let inst = b.build().unwrap();
        let fast = Universe::build(inst.clone());
        let reference = Universe::build_rowpair_reference(inst);
        assert_eq!(fast.total_tuples(), reference.total_tuples());
        let key = |u: &Universe| {
            let mut v: Vec<(BitSet, u64)> = u.iter().map(|(_, s, n)| (s.clone(), n)).collect();
            v.sort();
            v
        };
        assert_eq!(key(&fast), key(&reference));
        // Representatives land in their own class in both builds.
        for u in [&fast, &reference] {
            for c in 0..u.num_classes() {
                let (ri, pi) = u.representative(c);
                assert_eq!(&u.instance().signature(ri, pi), u.sig(c));
            }
        }
        assert!(fast.distinct_r_profiles() < 24);
    }

    #[test]
    fn class_of_probes_buckets() {
        let u = Universe::build(example_2_1());
        for (ri, pi) in u.instance().product().collect::<Vec<_>>() {
            let c = u.class_of(ri, pi).expect("class exists");
            assert_eq!(u.sig(c), &u.instance().signature(ri, pi));
        }
        // A signature that does not occur maps to no class: build a probe
        // instance whose only signature is Ω-sized, then ask for ∅.
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(1)]);
        b.row_p(&[Value::int(1)]);
        b.row_p(&[Value::int(2)]);
        let u = Universe::build(b.build().unwrap());
        assert_eq!(u.num_classes(), 2);
        assert!(u.class_of(0, 0).is_some());
    }

    #[test]
    fn closure_masks_match_pairwise_containment() {
        let u = Universe::build(example_2_1());
        let closure = u.closure();
        assert!(closure.has_static_masks());
        assert_eq!(closure.classes(), u.num_classes());
        let contains = |mask: &[u64], t: ClassId| mask[t / 64] >> (t % 64) & 1 == 1;
        for c in 0..u.num_classes() {
            let up = closure.up(c).expect("static masks present");
            let down = closure.down(c).expect("static masks present");
            for t in 0..u.num_classes() {
                assert_eq!(
                    contains(up, t),
                    u.sig(c).is_subset(u.sig(t)),
                    "up({c}) wrong at {t}"
                );
                assert_eq!(
                    contains(down, t),
                    u.sig(t).is_subset(u.sig(c)),
                    "down({c}) wrong at {t}"
                );
            }
            // Reflexivity: every class is in its own up and down sets.
            assert!(contains(up, c) && contains(down, c));
        }
        // members(b) lists exactly the classes whose signature has bit b.
        for b in 0..u.omega_len() {
            let m = closure.members(b);
            for t in 0..u.num_classes() {
                assert_eq!(contains(m, t), u.sig(t).contains(b), "members({b}) at {t}");
            }
        }
        assert!(closure.resident_bytes() > 0);
    }

    #[test]
    fn closure_parallel_build_matches_sequential() {
        // Force > 64 classes so masks are multi-word, and check every
        // worker count produces identical closure arenas.
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A1", "A2", "A3"]);
        b.relation_p("P", &["B1", "B2", "B3"]);
        for i in 0..40i64 {
            b.row_r_ints(&[i % 5, (i * 3) % 4, (i * 7) % 6]);
        }
        for j in 0..30i64 {
            b.row_p_ints(&[(j * 2) % 5, j % 4, (j * 5) % 6]);
        }
        let inst = b.build().unwrap();
        let seq = Universe::build_with_parallelism(inst.clone(), 1);
        assert!(seq.num_classes() > 64, "want multi-word class masks");
        for threads in [2usize, 5] {
            let par = Universe::build_with_parallelism(inst.clone(), threads);
            assert_eq!(seq.closure.members, par.closure.members);
            assert_eq!(seq.closure.up, par.closure.up);
            assert_eq!(seq.closure.down, par.closure.down);
        }
        // Spot-check multi-word masks against pairwise containment.
        let closure = seq.closure();
        assert_eq!(closure.mask_words(), 2);
        let contains = |mask: &[u64], t: ClassId| mask[t / 64] >> (t % 64) & 1 == 1;
        for c in (0..seq.num_classes()).step_by(7) {
            let down = closure.down(c).unwrap();
            for t in 0..seq.num_classes() {
                assert_eq!(contains(down, t), seq.sig(t).is_subset(seq.sig(c)));
            }
        }
    }

    #[test]
    fn decision_cache_memoizes_and_counts() {
        let u = Universe::build(example_2_1());
        let mut computed = 0usize;
        let neg = [0b1010u64];
        for _ in 0..3 {
            let v = u.cached_decision(7, &[], &neg, || {
                computed += 1;
                Some(4)
            });
            assert_eq!(v, Some(4));
        }
        assert_eq!(computed, 1, "only the first probe computes");
        let stats = u.decision_cache_stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0 && stats.bytes <= stats.budget_bytes);
        // A different strategy key or a different mask is a separate entry.
        assert_eq!(u.cached_decision(8, &[], &neg, || Some(1)), Some(1));
        assert_eq!(u.cached_decision(7, &[3], &neg, || Some(2)), Some(2));
        assert_eq!(u.cached_decision(7, &[], &[0b1011], || Some(3)), Some(3));
        assert_eq!(u.decision_cache_stats().entries, 4);
        // The original entry is untouched.
        assert_eq!(u.cached_decision(7, &[], &neg, || unreachable!()), Some(4));
        // `None` moves (the strategy halted) are cached too.
        assert_eq!(u.cached_decision(9, &[], &neg, || None), None);
        assert_eq!(u.cached_decision(9, &[], &neg, || unreachable!()), None);
    }

    #[test]
    fn decision_cache_budget_zero_disables_caching() {
        let u = Universe::build(example_2_1()).with_decision_cache_budget(0);
        let mut computed = 0usize;
        for _ in 0..3 {
            u.cached_decision(7, &[], &[1], || {
                computed += 1;
                Some(0)
            });
        }
        assert_eq!(computed, 3, "budget 0 must compute every probe");
        let stats = u.decision_cache_stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.budget_bytes, 0);
    }

    #[test]
    fn decision_cache_lru_eviction_respects_budget() {
        // Budget fits only a handful of entries; older ones must be
        // evicted least-recently-used first, and bytes must never exceed
        // the budget after an insert settles.
        let budget = 4 * (CACHE_ENTRY_OVERHEAD + 16);
        let u = Universe::build(example_2_1()).with_decision_cache_budget(budget);
        for i in 0..16u64 {
            u.cached_decision(1, &[i], &[i], || Some(i as usize));
            assert!(
                u.decision_cache_stats().bytes <= budget,
                "cache bytes exceed the budget after insert {i}"
            );
        }
        let stats = u.decision_cache_stats();
        assert!(stats.evictions > 0, "budget pressure must evict");
        assert!(stats.entries <= 4);
        // The most recent entry survives; the oldest is gone (recompute).
        let mut recomputed = false;
        assert_eq!(
            u.cached_decision(1, &[15], &[15], || unreachable!()),
            Some(15)
        );
        u.cached_decision(1, &[0], &[0], || {
            recomputed = true;
            Some(0)
        });
        assert!(recomputed, "the LRU entry should have been evicted");
        // Cloned universes restart with an empty cache but keep the budget.
        let clone = u.clone();
        let cs = clone.decision_cache_stats();
        assert_eq!((cs.entries, cs.hits, cs.misses), (0, 0, 0));
        assert_eq!(cs.budget_bytes, budget);
    }

    #[test]
    fn empty_relation_yields_no_classes() {
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        let u = Universe::build(b.build().unwrap());
        assert_eq!(u.num_classes(), 0);
        assert_eq!(u.total_tuples(), 0);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminates() {
        // Building the same instance twice yields the same fingerprint;
        // an unrelated instance yields a different one. Clones (fresh
        // decision cache, same classes) agree.
        let a = Universe::build(example_2_1());
        let b = Universe::build(example_2_1());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        let other = Universe::build(crate::paper::flight_hotel());
        assert_ne!(a.fingerprint(), other.fingerprint());
    }
}
