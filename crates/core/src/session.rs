//! Step-by-step interactive inference sessions.
//!
//! [`crate::engine::run_inference`] drives the whole loop against an
//! [`crate::engine::Oracle`]; a [`Session`] instead exposes Algorithm 1 one
//! question at a time so a real application (CLI, web UI, crowdsourcing
//! task queue) can interleave the user's answers with its own control flow:
//!
//! ```
//! use jqi_core::session::Session;
//! use jqi_core::strategy::TopDown;
//! use jqi_core::universe::Universe;
//! use jqi_core::Label;
//! use jqi_core::paper::flight_hotel;
//!
//! let universe = Universe::build(flight_hotel());
//! let mut session = Session::new(&universe, TopDown::new());
//! while let Some(candidate) = session.next().unwrap() {
//!     // Show `candidate.values(&universe)` to the user; here: accept
//!     // flights into the hotel's city with a matching discount airline
//!     // (query Q2).
//!     let values = candidate.values(&universe);
//!     let keep = values[1] == values[3] && values[2] == values[4];
//!     session
//!         .answer(if keep { Label::Positive } else { Label::Negative })
//!         .unwrap();
//! }
//! let theta = session.inferred_predicate();
//! assert_eq!(universe.instance().predicate_string(&theta),
//!            "{Flight.To=Hotel.City ∧ Flight.Airline=Hotel.Discount}");
//! ```

use crate::error::{InferenceError, Result};
use crate::sample::{Label, Sample};
use crate::state::InferenceState;
use crate::strategy::{DynStrategy, Strategy, StrategyConfig};
use crate::universe::{ClassId, Universe};
use jqi_relation::{BitSet, Value};
use std::sync::Arc;

/// A tuple presented to the user for labeling.
///
/// Carries only the class and representative indices; the displayable
/// attribute values are resolved on demand via [`Candidate::values`], so
/// the question hot path (a server asking thousands of questions per
/// second, most of them answered by class id) never allocates or resolves
/// symbols it does not show.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// The T-equivalence class being asked about.
    pub class: ClassId,
    /// The representative `(ri, pi)` product tuple shown to the user.
    pub tuple: (usize, usize),
}

impl Candidate {
    /// The concatenated attribute values of the representative tuple —
    /// what a UI renders next to the question.
    pub fn values(&self, universe: &Universe) -> Vec<Value> {
        let (ri, pi) = self.tuple;
        universe.instance().product_tuple_values(ri, pi)
    }
}

/// An in-progress interactive inference run.
///
/// The session owns one [`InferenceState`] for its whole lifetime: answers
/// are applied incrementally, and the halt test, known-label queries and
/// inferred predicate are O(1) reads on the maintained state.
#[derive(Debug)]
pub struct Session<'u, S: Strategy> {
    strategy: S,
    state: InferenceState<'u>,
    pending: Option<ClassId>,
}

impl<'u, S: Strategy> Session<'u, S> {
    /// Starts a session over `universe` with `strategy`.
    pub fn new(universe: &'u Universe, strategy: S) -> Self {
        Session {
            strategy,
            state: InferenceState::new(universe),
            pending: None,
        }
    }

    /// Asks the strategy for the next tuple to label. Returns `None` when
    /// the halt condition Γ holds; errors if the previous candidate has not
    /// been answered yet.
    ///
    /// Intentionally named after Algorithm 1's "next tuple" step; a session
    /// is not an `Iterator` because answering is required between calls.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Candidate>> {
        if self.pending.is_some() {
            return Err(InferenceError::CandidateAlreadyPending);
        }
        match self.strategy.next(&self.state)? {
            None => Ok(None),
            Some(c) => {
                self.pending = Some(c);
                Ok(Some(self.candidate(c)))
            }
        }
    }

    /// The unanswered candidate from the last [`Session::next`] call, if
    /// any — re-presentable without consuming a strategy step, so a server
    /// can re-deliver the outstanding question idempotently (at-least-once
    /// task queues, reconnecting clients).
    pub fn pending_candidate(&self) -> Option<Candidate> {
        self.pending.map(|c| self.candidate(c))
    }

    /// The class of the outstanding question, if any — what
    /// [`Session::pending_candidate`] re-presents and
    /// [`OwnedSession::replay`] re-arms after a restore.
    pub fn pending_class(&self) -> Option<ClassId> {
        self.pending
    }

    fn candidate(&self, c: ClassId) -> Candidate {
        let (ri, pi) = self.state.universe().representative(c);
        Candidate {
            class: c,
            tuple: (ri, pi),
        }
    }

    /// Records the user's answer for the pending candidate, checking
    /// consistency (Algorithm 1, lines 5–7).
    pub fn answer(&mut self, label: Label) -> Result<()> {
        let c = self
            .pending
            .take()
            .ok_or(InferenceError::NoPendingCandidate)?;
        self.state.apply(c, label)?;
        if !self.state.is_consistent() {
            return Err(InferenceError::InconsistentSample { class: c });
        }
        Ok(())
    }

    /// Folds a batch of class-addressed answers into the session in one
    /// call — the shape in which answers arrive asynchronously, out of
    /// order, or from several crowd workers at once. Delegates to
    /// [`InferenceState::apply_batch`] (idempotent for agreeing duplicates,
    /// [`InferenceError::ConflictingLabel`] for contradictions,
    /// consistency-checked per answer) and returns the number of answers
    /// applied.
    ///
    /// The pending candidate, if any, stays pending unless the batch made
    /// it uninformative (labeled it directly, or rendered it certain) — in
    /// which case it is withdrawn and the next [`Session::next`] call asks
    /// a fresh question.
    pub fn apply_batch(&mut self, answers: &[(ClassId, Label)]) -> Result<usize> {
        let applied = self.state.apply_batch(answers);
        if let Some(p) = self.pending {
            if !self.state.is_consistent() || !self.state.is_informative(p) {
                self.pending = None;
            }
        }
        applied
    }

    /// Whether the session is finished (no informative tuple remains and no
    /// candidate is pending).
    pub fn is_done(&self) -> bool {
        self.pending.is_none() && !self.state.any_informative()
    }

    /// The predicate inferred so far: `T(S⁺)`, the most specific predicate
    /// consistent with the answers. The user may stop early and take this
    /// (§4.1: "the halt condition Γ may be weaker in practice").
    pub fn inferred_predicate(&self) -> BitSet {
        self.state.t_pos().clone()
    }

    /// What the engine already knows about class `c` without asking:
    /// its recorded or certain label, if any.
    pub fn known_label(&self, c: ClassId) -> Option<Label> {
        self.state.known_label(c)
    }

    /// Number of answers recorded so far.
    pub fn interactions(&self) -> usize {
        self.state.len()
    }

    /// The questions and answers so far, in order.
    pub fn history(&self) -> &[(ClassId, Label)] {
        self.state.history()
    }

    /// The incrementally maintained session state — the consistent interval,
    /// class partition, entropies, and counts.
    pub fn state(&self) -> &InferenceState<'u> {
        &self.state
    }

    /// Resident heap bytes of the session's derived inference state (see
    /// [`InferenceState::state_bytes`]) — what a session table's footprint
    /// accounting sums per live session. Excludes the shared universe and
    /// the label history.
    pub fn state_bytes(&self) -> usize {
        self.state.state_bytes()
    }

    /// Total resident bytes of the materialized session: the session
    /// struct itself (masks headers, scratch cells, strategy handle), the
    /// derived-state heap, and the label-history heap (by allocation
    /// capacity, [`InferenceState::history_heap_bytes`], so unshrunken
    /// growth slack is counted too). Excludes the shared universe. This is
    /// the footprint a hibernated tier reclaims down to the bare replay
    /// log — compare [`Session::into_replay_parts`].
    pub fn resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.state.state_bytes() + self.state.history_heap_bytes()
    }

    /// The current sample, reconstructed in the from-scratch representation
    /// (for interoperability with [`crate::certain`] / [`crate::entropy`]).
    pub fn sample(&self) -> Sample {
        self.state.as_sample()
    }

    /// The universe the session runs over.
    pub fn universe(&self) -> &Universe {
        self.state.universe()
    }

    /// The configured strategy.
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Decomposes the session into the parts a hibernated session tier
    /// keeps: the label history (the replay log) and the outstanding
    /// question, dropping every derived mask and the strategy object.
    /// Feeding both back through [`OwnedSession::replay`] (with the same
    /// strategy configuration) rebuilds an indistinguishable session —
    /// every strategy is a deterministic function of its configuration and
    /// the replayed state.
    pub fn into_replay_parts(self) -> (Vec<(ClassId, Label)>, Option<ClassId>) {
        (self.state.into_history(), self.pending)
    }
}

/// A session that co-owns its universe: `Session<'static, DynStrategy>`.
///
/// Because [`InferenceState::new_shared`] produces a state with **no
/// borrows** (`'static`), an owned session can be stored in a long-running
/// service's session table, moved across threads, and outlive the scope
/// that created it — everything a borrowing [`Session<'u>`](Session)
/// cannot do. The strategy is boxed and [`Send`] so heterogeneous sessions
/// (RND next to L2S next to BU) live in one map.
///
/// All of the session logic is shared with [`Session`]; `OwnedSession` only
/// adds constructors.
pub type OwnedSession = Session<'static, DynStrategy>;

impl OwnedSession {
    /// Starts an owned session over a shared universe.
    pub fn owned(universe: Arc<Universe>, strategy: DynStrategy) -> OwnedSession {
        Session {
            strategy,
            state: InferenceState::new_shared(universe),
            pending: None,
        }
    }

    /// Starts an owned session with the strategy described by `config`.
    pub fn with_config(universe: Arc<Universe>, config: &StrategyConfig) -> OwnedSession {
        Self::owned(universe, config.build())
    }

    /// Rebuilds a session deterministically from its recorded label
    /// sequence — the restore half of snapshot/restore.
    ///
    /// The history is folded back through [`Session::apply_batch`], so the
    /// restored state is identical to the state the labels produced the
    /// first time, and — because every strategy is a deterministic function
    /// of its configuration and the current state — the session continues
    /// exactly as an uninterrupted one would. `pending` re-arms the
    /// question that was outstanding at snapshot time (out-of-range
    /// classes error; a pending class the history has since made
    /// uninformative is dropped, its question being moot), so re-delivery
    /// survives the restart too. Errors if the history is not a valid
    /// consistent label sequence for this universe.
    pub fn replay(
        universe: Arc<Universe>,
        config: &StrategyConfig,
        history: &[(ClassId, Label)],
        pending: Option<ClassId>,
    ) -> Result<OwnedSession> {
        let mut session = Self::with_config(universe, config);
        session.apply_batch(history)?;
        if let Some(c) = pending {
            if c >= session.state.num_classes() {
                return Err(InferenceError::ClassOutOfBounds {
                    class: c,
                    len: session.state.num_classes(),
                });
            }
            if session.state.is_informative(c) {
                session.pending = Some(c);
            }
        }
        Ok(session)
    }

    /// Re-targets the session at `universe` — typically the
    /// [`Universe::apply_delta`](crate::delta) successor of the one it
    /// runs over — carrying its labels across by class signature (see
    /// [`InferenceState::rebind`] for the carried/replayed split and the
    /// dropped-label semantics).
    ///
    /// The strategy is rebuilt from `config`: strategies are
    /// deterministic functions of their configuration and the current
    /// state, so this matches [`OwnedSession::replay`] semantics exactly.
    /// A pending question follows its class's signature into the new
    /// universe and is withdrawn if the class vanished or is no longer
    /// informative — the next [`Session::next`] call asks a fresh one.
    /// On error the session is untouched.
    pub fn rebind(
        &mut self,
        universe: Arc<Universe>,
        config: &StrategyConfig,
    ) -> Result<crate::state::RebindReport> {
        let (state, report) = self.state.rebind(Arc::clone(&universe))?;
        let pending = self
            .pending
            .and_then(|c| universe.class_for_signature(self.state.universe().sig(c)))
            .filter(|&nc| state.is_informative(nc));
        self.state = state;
        self.strategy = config.build();
        self.pending = pending;
        Ok(report)
    }

    /// A fresh handle to the shared universe.
    pub fn universe_arc(&self) -> Arc<Universe> {
        self.state
            .shared_universe()
            .expect("owned sessions always share their universe")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::example_2_1;
    use crate::strategy::{BottomUp, TopDown};
    use crate::universe::Universe;

    #[test]
    fn drives_to_completion_like_the_engine() {
        let u = Universe::build(example_2_1());
        let goal = crate::predicate_from_names(u.instance(), &[("A1", "B1")]).unwrap();
        let mut session = Session::new(&u, TopDown::new());
        while let Some(cand) = session.next().unwrap() {
            let label = if goal.is_subset(u.sig(cand.class)) {
                Label::Positive
            } else {
                Label::Negative
            };
            session.answer(label).unwrap();
        }
        assert!(session.is_done());
        // Same outcome as the batch engine.
        let mut oracle = crate::engine::PredicateOracle::new(goal.clone());
        let run = crate::engine::run_inference(&u, &mut TopDown::new(), &mut oracle).unwrap();
        assert_eq!(session.inferred_predicate(), run.predicate);
        assert_eq!(session.interactions(), run.interactions);
        assert_eq!(session.history(), &run.history[..]);
    }

    #[test]
    fn double_next_is_rejected() {
        let u = Universe::build(example_2_1());
        let mut session = Session::new(&u, BottomUp::new());
        session.next().unwrap().unwrap();
        let e = session.next().unwrap_err();
        assert_eq!(e, InferenceError::CandidateAlreadyPending);
    }

    #[test]
    fn answer_without_candidate_is_rejected() {
        let u = Universe::build(example_2_1());
        let mut session = Session::new(&u, BottomUp::new());
        let e = session.answer(Label::Positive).unwrap_err();
        assert_eq!(e, InferenceError::NoPendingCandidate);
    }

    #[test]
    fn candidate_exposes_values() {
        let u = Universe::build(example_2_1());
        let mut session = Session::new(&u, BottomUp::new());
        let cand = session.next().unwrap().unwrap();
        // BU first asks about (t3,t1') = (2,2, 1,1,0).
        assert_eq!(cand.tuple, (2, 0));
        assert_eq!(cand.values(&u).len(), 5);
        session.answer(Label::Negative).unwrap();
        assert_eq!(session.interactions(), 1);
    }

    #[test]
    fn early_stop_returns_most_specific_so_far() {
        let u = Universe::build(example_2_1());
        let mut session = Session::new(&u, TopDown::new());
        let cand = session.next().unwrap().unwrap();
        session.answer(Label::Positive).unwrap();
        // Early stop: inferred predicate is exactly the signature of the
        // one positive class.
        assert_eq!(session.inferred_predicate(), *u.sig(cand.class));
        assert!(!session.is_done());
    }

    #[test]
    fn rebind_carries_masks_over_count_only_deltas() {
        use crate::delta::UniverseDelta;
        use jqi_relation::{Side, Tuple};
        let u = Arc::new(Universe::build(example_2_1()));
        let config = StrategyConfig::Td;
        let mut session = OwnedSession::with_config(Arc::clone(&u), &config);
        let cand = session.next().unwrap().unwrap();
        session.answer(Label::Negative).unwrap();
        session.next().unwrap().unwrap();
        // Duplicate an existing R row: counts change, signatures do not.
        let mut d = UniverseDelta::new();
        d.insert(
            Side::R,
            Tuple::new(u.instance().r().rows()[0].symbols().to_vec()),
        );
        let next = Arc::new(u.apply_delta(&d).unwrap());
        let pending_before = session.pending_class();
        let report = session.rebind(Arc::clone(&next), &config).unwrap();
        assert!(report.carried_masks);
        assert_eq!(report.dropped_labels, 0);
        assert_eq!(session.history(), &[(cand.class, Label::Negative)]);
        assert_eq!(session.pending_class(), pending_before);
        assert_eq!(session.universe().epoch(), 1);
        // The carried counters match a from-scratch replay on the new
        // universe.
        let replayed = OwnedSession::replay(
            Arc::clone(&next),
            &config,
            session.history(),
            session.pending_class(),
        )
        .unwrap();
        for mode in [
            crate::certain::CountMode::Tuples,
            crate::certain::CountMode::Classes,
        ] {
            assert_eq!(
                session.state().uninformative_count(mode),
                replayed.state().uninformative_count(mode)
            );
        }
        assert_eq!(
            session.state().informative().collect::<Vec<_>>(),
            replayed.state().informative().collect::<Vec<_>>()
        );
    }

    #[test]
    fn rebind_replays_over_structural_deltas() {
        use crate::delta::UniverseDelta;
        use jqi_relation::{Interner, Side, Tuple, Value};
        let u = Arc::new(Universe::build(example_2_1()));
        let config = StrategyConfig::Td;
        let mut session = OwnedSession::with_config(Arc::clone(&u), &config);
        let cand = session.next().unwrap().unwrap();
        session.answer(Label::Negative).unwrap();
        // A new row recombining existing shared symbols grows the class
        // structure: (2,1) yields product signatures {3,4}, {2,4} and {0}
        // against the three P rows, none of which exist in example 2.1.
        let it: &Interner = u.instance().interner();
        let row = Tuple::intern(it, &[Value::int(2), Value::int(1)]);
        let mut d = UniverseDelta::new();
        d.insert(Side::R, row);
        let next = Arc::new(u.apply_delta(&d).unwrap());
        assert_ne!(next.sigs(), u.sigs());
        let report = session.rebind(Arc::clone(&next), &config).unwrap();
        assert!(!report.carried_masks);
        assert_eq!(report.dropped_labels, 0);
        // The label survived, remapped by signature.
        assert_eq!(session.interactions(), 1);
        let (nc, label) = session.history()[0];
        assert_eq!(label, Label::Negative);
        assert_eq!(next.sig(nc), u.sig(cand.class));
        // The session keeps driving to completion on the new universe.
        let goal = crate::predicate_from_names(next.instance(), &[("A1", "B1")]).unwrap();
        while let Some(c) = session.next().unwrap() {
            let keep = goal.is_subset(next.sig(c.class));
            session
                .answer(if keep {
                    Label::Positive
                } else {
                    Label::Negative
                })
                .unwrap();
        }
        assert!(session.is_done());
    }

    #[test]
    fn rebind_drops_labels_whose_class_vanished() {
        use crate::delta::UniverseDelta;
        use jqi_relation::{Interner, Side, Tuple, Value};
        // Base with an extra R row whose symbols are unique to it.
        let mut b = jqi_relation::InstanceBuilder::new();
        b.relation_r("R", &["A1", "A2"]);
        b.relation_p("P", &["B1"]);
        b.row_r(&[Value::int(0), Value::int(1)]);
        b.row_r(&[Value::int(50), Value::int(51)]);
        b.row_p(&[Value::int(1)]);
        let inst = b.build().unwrap();
        let it: &Interner = inst.interner();
        let doomed = Tuple::intern(it, &[Value::int(50), Value::int(51)]);
        let u = Arc::new(Universe::build(inst));
        let config = StrategyConfig::Td;
        let mut session = OwnedSession::with_config(Arc::clone(&u), &config);
        // Label the class of the doomed row's product tuples.
        let doomed_class = u.class_of(1, 0).unwrap();
        session
            .apply_batch(&[(doomed_class, Label::Negative)])
            .unwrap();
        let mut d = UniverseDelta::new();
        d.delete(Side::R, doomed);
        let next = Arc::new(u.apply_delta(&d).unwrap());
        let report = session.rebind(Arc::clone(&next), &config).unwrap();
        assert_eq!(report.dropped_labels, 1);
        assert_eq!(session.interactions(), 0, "the dropped label is gone");
        assert!(session.state().is_consistent());
    }

    #[test]
    fn known_label_reports_certainty() {
        let u = Universe::build(example_2_1());
        let mut session = Session::new(&u, BottomUp::new());
        let cand = session.next().unwrap().unwrap();
        assert_eq!(session.known_label(cand.class), None);
        session.answer(Label::Positive).unwrap();
        assert_eq!(session.known_label(cand.class), Some(Label::Positive));
    }
}
