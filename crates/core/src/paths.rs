//! Join-path inference (§7 future work: "extend our approach … to join
//! paths").
//!
//! A *join path* chains `k ≥ 2` relations `R₁ – R₂ – … – R_k`; the goal is
//! one equijoin predicate per adjacent pair. Because the paper's theory is
//! formulated for exactly two relations, a path decomposes into `k − 1`
//! independent two-relation inference problems — each hop gets its own
//! Cartesian product, sample, and strategy run, and the user is asked to
//! label pairs of *adjacent* tuples (never full path tuples, whose number
//! would be the product of all cardinalities).
//!
//! ```
//! use jqi_core::paths::PathBuilder;
//! use jqi_core::strategy::StrategyKind;
//! use jqi_relation::Value;
//!
//! // City → Flight → Hotel: two hops.
//! let mut b = PathBuilder::new();
//! b.relation("City", &["Name"], vec![vec![Value::str("Paris")]]);
//! b.relation(
//!     "Flight",
//!     &["From", "To"],
//!     vec![vec![Value::str("Paris"), Value::str("Lille")]],
//! );
//! b.relation("Hotel", &["HCity"], vec![vec![Value::str("Lille")]]);
//! let path = b.build().unwrap();
//! assert_eq!(path.num_hops(), 2);
//!
//! // Hidden goals: Name = From, then To = HCity.
//! let goals = vec![
//!     path.predicate_from_names(0, &[("Name", "From")]).unwrap(),
//!     path.predicate_from_names(1, &[("To", "HCity")]).unwrap(),
//! ];
//! let run = path.infer_with_goals(&goals, StrategyKind::Td, 0).unwrap();
//! assert_eq!(run.predicates.len(), 2);
//! assert_eq!(path.count_path_tuples(&run.predicates), 1);
//! ```

use crate::engine::{run_inference, PredicateOracle};
use crate::error::Result;
use crate::strategy::StrategyKind;
use crate::universe::Universe;
use jqi_relation::{BitSet, Instance, Interner, Relation, RelationError, Schema, Value};
use std::sync::Arc;

/// Builder collecting the relations of a join path in order.
#[derive(Default)]
pub struct PathBuilder {
    interner: Arc<Interner>,
    relations: Vec<Relation>,
    error: Option<RelationError>,
}

impl PathBuilder {
    /// Starts an empty path.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a relation with its rows. Adjacent relations must have
    /// disjoint attribute names (the two-relation assumption per hop).
    pub fn relation(&mut self, name: &str, attrs: &[&str], rows: Vec<Vec<Value>>) -> &mut Self {
        if self.error.is_some() {
            return self;
        }
        match Schema::new(name, attrs) {
            Ok(schema) => {
                let mut rel = Relation::new(schema);
                for row in rows {
                    if let Err(e) = rel.push_row(&self.interner, &row) {
                        self.error = Some(e);
                        return self;
                    }
                }
                self.relations.push(rel);
            }
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Finishes the path: one [`Universe`] per adjacent pair.
    pub fn build(self) -> jqi_relation::Result<JoinPath> {
        if let Some(e) = self.error {
            return Err(e);
        }
        assert!(
            self.relations.len() >= 2,
            "a join path needs at least two relations"
        );
        let mut hops = Vec::with_capacity(self.relations.len() - 1);
        for pair in self.relations.windows(2) {
            let instance = Instance::new(self.interner.clone(), pair[0].clone(), pair[1].clone())?;
            hops.push(Universe::build(instance));
        }
        Ok(JoinPath { hops })
    }
}

/// A chain of two-relation inference problems.
#[derive(Debug, Clone)]
pub struct JoinPath {
    hops: Vec<Universe>,
}

/// The outcome of inferring a whole path.
#[derive(Debug, Clone)]
pub struct PathRun {
    /// One inferred predicate per hop, in path order.
    pub predicates: Vec<BitSet>,
    /// Questions asked per hop.
    pub interactions_per_hop: Vec<usize>,
}

impl PathRun {
    /// Total number of questions across all hops.
    pub fn total_interactions(&self) -> usize {
        self.interactions_per_hop.iter().sum()
    }
}

impl JoinPath {
    /// Number of hops (`k − 1` for `k` relations).
    pub fn num_hops(&self) -> usize {
        self.hops.len()
    }

    /// The universe of hop `h`.
    pub fn hop(&self, h: usize) -> &Universe {
        &self.hops[h]
    }

    /// Builds a goal predicate for hop `h` from attribute-name pairs.
    pub fn predicate_from_names(
        &self,
        h: usize,
        pairs: &[(&str, &str)],
    ) -> jqi_relation::Result<BitSet> {
        crate::predicate_from_names(self.hops[h].instance(), pairs)
    }

    /// Infers every hop against goal-predicate oracles, with a fresh
    /// strategy per hop.
    pub fn infer_with_goals(
        &self,
        goals: &[BitSet],
        kind: StrategyKind,
        seed: u64,
    ) -> Result<PathRun> {
        assert_eq!(goals.len(), self.hops.len(), "one goal per hop");
        let mut predicates = Vec::with_capacity(self.hops.len());
        let mut interactions = Vec::with_capacity(self.hops.len());
        for (universe, goal) in self.hops.iter().zip(goals) {
            let mut strategy = kind.build(seed);
            let mut oracle = PredicateOracle::new(goal.clone());
            let run = run_inference(universe, strategy.as_mut(), &mut oracle)?;
            predicates.push(run.predicate);
            interactions.push(run.interactions);
        }
        Ok(PathRun {
            predicates,
            interactions_per_hop: interactions,
        })
    }

    /// Counts the tuples of the full path join
    /// `R₁ ⋈θ₁ R₂ ⋈θ₂ … ⋈θ_{k−1} R_k` without materializing it, by
    /// dynamic programming over per-hop selected pairs.
    pub fn count_path_tuples(&self, predicates: &[BitSet]) -> u64 {
        assert_eq!(predicates.len(), self.hops.len(), "one predicate per hop");
        // counts[j] = number of partial path tuples ending at row j of the
        // current relation.
        let first = self.hops[0].instance();
        let mut counts: Vec<u64> = vec![0; first.p().len()];
        for (ri, pi) in first.equijoin(&predicates[0]) {
            let _ = ri;
            counts[pi] += 1;
        }
        for (h, universe) in self.hops.iter().enumerate().skip(1) {
            let inst = universe.instance();
            let mut next: Vec<u64> = vec![0; inst.p().len()];
            for (ri, pi) in inst.equijoin(&predicates[h]) {
                next[pi] += counts[ri];
            }
            counts = next;
        }
        counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three relations wired City → Flight → Hotel.
    fn city_flight_hotel() -> JoinPath {
        let mut b = PathBuilder::new();
        b.relation(
            "City",
            &["Name", "Country"],
            vec![
                vec![Value::str("Paris"), Value::str("FR")],
                vec![Value::str("Lille"), Value::str("FR")],
                vec![Value::str("NYC"), Value::str("US")],
            ],
        );
        b.relation(
            "Flight",
            &["From", "To", "Airline"],
            vec![
                vec![Value::str("Paris"), Value::str("Lille"), Value::str("AF")],
                vec![Value::str("Lille"), Value::str("NYC"), Value::str("AA")],
                vec![Value::str("NYC"), Value::str("Paris"), Value::str("AA")],
                vec![Value::str("Paris"), Value::str("NYC"), Value::str("AF")],
            ],
        );
        b.relation(
            "Hotel",
            &["HCity", "Discount"],
            vec![
                vec![Value::str("NYC"), Value::str("AA")],
                vec![Value::str("Paris"), Value::str("None")],
                vec![Value::str("Lille"), Value::str("AF")],
            ],
        );
        b.build().expect("well-formed path")
    }

    #[test]
    fn hops_are_independent_universes() {
        let path = city_flight_hotel();
        assert_eq!(path.num_hops(), 2);
        assert_eq!(path.hop(0).instance().r().schema().name(), "City");
        assert_eq!(path.hop(1).instance().p().schema().name(), "Hotel");
    }

    #[test]
    fn inference_recovers_both_hops() {
        let path = city_flight_hotel();
        let goals = vec![
            path.predicate_from_names(0, &[("Name", "From")]).unwrap(),
            path.predicate_from_names(1, &[("To", "HCity")]).unwrap(),
        ];
        for kind in [StrategyKind::Bu, StrategyKind::Td, StrategyKind::L2s] {
            let run = path.infer_with_goals(&goals, kind, 5).unwrap();
            for (h, (inferred, goal)) in run.predicates.iter().zip(&goals).enumerate() {
                let inst = path.hop(h).instance();
                assert_eq!(
                    inst.equijoin(inferred),
                    inst.equijoin(goal),
                    "{kind} missed hop {h}"
                );
            }
            assert!(run.total_interactions() >= 2);
        }
    }

    #[test]
    fn path_count_matches_brute_force() {
        let path = city_flight_hotel();
        let goals = vec![
            path.predicate_from_names(0, &[("Name", "From")]).unwrap(),
            path.predicate_from_names(1, &[("To", "HCity")]).unwrap(),
        ];
        // Brute force: for each (city, flight, hotel) triple, check both
        // joins via the per-hop instances.
        let i0 = path.hop(0).instance();
        let i1 = path.hop(1).instance();
        let mut expect = 0u64;
        for c in 0..i0.r().len() {
            for f in 0..i0.p().len() {
                if !i0.selects(&goals[0], c, f) {
                    continue;
                }
                for h in 0..i1.p().len() {
                    if i1.selects(&goals[1], f, h) {
                        expect += 1;
                    }
                }
            }
        }
        assert_eq!(path.count_path_tuples(&goals), expect);
        // Sanity: the City→Flight→Hotel chain via city names has joins.
        assert!(expect > 0);
    }

    #[test]
    fn empty_predicates_count_full_product() {
        let path = city_flight_hotel();
        let empties = vec![
            path.hop(0).instance().pairs().bottom(),
            path.hop(1).instance().pairs().bottom(),
        ];
        // ∅ selects everything: 3 · 4 · 3 path tuples.
        assert_eq!(path.count_path_tuples(&empties), 36);
    }

    #[test]
    fn builder_rejects_bad_rows() {
        let mut b = PathBuilder::new();
        b.relation("A", &["X"], vec![vec![Value::int(1), Value::int(2)]]);
        b.relation("B", &["Y"], vec![]);
        assert!(b.build().is_err());
    }

    #[test]
    fn builder_rejects_overlapping_adjacent_attrs() {
        let mut b = PathBuilder::new();
        b.relation("A", &["X"], vec![]);
        b.relation("B", &["X"], vec![]);
        assert!(b.build().is_err());
    }

    #[test]
    #[should_panic(expected = "at least two relations")]
    fn single_relation_path_rejected() {
        let mut b = PathBuilder::new();
        b.relation("A", &["X"], vec![]);
        let _ = b.build();
    }
}
