//! Interactive semijoin inference (§7 future work).
//!
//! The paper stops at Theorem 6.1: deciding whether a *tuple* is
//! uninformative for semijoins is intractable, so the equijoin scenario of
//! §3 does not carry over cheaply. Its future work asks for heuristics for
//! "the interactive inference of semijoins". This module provides the
//! exact-but-exponential interactive loop, which is perfectly usable on
//! the modest instances the paper targets:
//!
//! * An R-row `r` is **decided** w.r.t. the current sample if one of its
//!   two labelings is inconsistent — i.e. the consistency solver refutes
//!   `S ∪ {(r, +)}` or `S ∪ {(r, −)}`. Decided rows are the semijoin
//!   analogue of certain tuples, and asking about them is wasted work.
//! * The loop repeatedly asks the user to label an undecided row (chosen
//!   by a witness-diversity heuristic), and halts when every row is
//!   labeled or decided.
//!
//! Each informativeness test costs up to two NP-hard solver calls, as
//! Theorem 6.1 says it must (unless P = NP). What *can* be saved — and
//! [`SemijoinState`] saves it, mirroring `jqi_core::state::InferenceState`
//! for the equijoin scenario — is re-deciding rows that are already
//! decided: decidedness is monotone (a labeling refuted under `S` stays
//! refuted under any `S′ ⊇ S`), so the interactive loop only re-tests the
//! still-open rows after each answer instead of all of `R`, and the
//! witness-diversity scores behind [`pick_next`] are sample-independent
//! and computed once.

use crate::consistency::find_consistent_semijoin;
use crate::sample::SemijoinSample;
use jqi_relation::{BitSet, Instance};
use std::collections::HashSet;

/// The label of one decided-or-labeled row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowStatus {
    /// In the sample or forced positive.
    Positive,
    /// In the sample or forced negative.
    Negative,
    /// Still informative: both labelings are consistent.
    Open,
}

/// Classifies row `r`: forced-positive, forced-negative, or open.
pub fn row_status(instance: &Instance, sample: &SemijoinSample, r: usize) -> RowStatus {
    if sample.positives().contains(&r) {
        return RowStatus::Positive;
    }
    if sample.negatives().contains(&r) {
        return RowStatus::Negative;
    }
    let mut as_pos = sample.clone();
    as_pos.add_positive(r);
    let pos_ok = find_consistent_semijoin(instance, &as_pos).is_some();
    let mut as_neg = sample.clone();
    as_neg.add_negative(r);
    let neg_ok = find_consistent_semijoin(instance, &as_neg).is_some();
    match (pos_ok, neg_ok) {
        (true, true) => RowStatus::Open,
        (true, false) => RowStatus::Positive,
        (false, true) => RowStatus::Negative,
        (false, false) => {
            // Only possible if the sample itself is already inconsistent.
            debug_assert!(find_consistent_semijoin(instance, sample).is_none());
            RowStatus::Open
        }
    }
}

/// All rows still worth asking about.
pub fn open_rows(instance: &Instance, sample: &SemijoinSample) -> Vec<usize> {
    (0..instance.r().len())
        .filter(|&r| row_status(instance, sample, r) == RowStatus::Open)
        .collect()
}

/// Heuristic pick among the open rows: the row with the most *distinct*
/// maximal witness signatures — the semijoin analogue of a high-entropy
/// tuple, since each distinct witness keeps a different region of the
/// predicate space alive. Ties break toward the smallest row index.
pub fn pick_next(instance: &Instance, sample: &SemijoinSample) -> Option<usize> {
    open_rows(instance, sample).into_iter().max_by_key(|&r| {
        let sigs: HashSet<BitSet> = (0..instance.p().len())
            .map(|pi| instance.signature(r, pi))
            .collect();
        (sigs.len(), usize::MAX - r)
    })
}

/// A simulated user for the interactive loop.
pub trait SemijoinOracle {
    /// Whether R-row `r` belongs to the user's intended semijoin result.
    fn wants(&mut self, instance: &Instance, r: usize) -> bool;
}

/// Labels according to a goal semijoin predicate.
#[derive(Debug, Clone)]
pub struct GoalOracle(pub BitSet);

impl SemijoinOracle for GoalOracle {
    fn wants(&mut self, instance: &Instance, r: usize) -> bool {
        (0..instance.p().len()).any(|pi| instance.selects(&self.0, r, pi))
    }
}

/// Result of an interactive semijoin run.
#[derive(Debug, Clone)]
pub struct SemijoinRun {
    /// A predicate consistent with all answers (maximal for some witness
    /// assignment).
    pub predicate: BitSet,
    /// Number of questions asked.
    pub interactions: usize,
    /// The final sample.
    pub sample: SemijoinSample,
}

/// The incrementally maintained state of one interactive semijoin session:
/// the sample plus the cached row partition (labeled / forced / open) and
/// the precomputed witness-diversity scores.
///
/// The NP-hard per-row informativeness tests (Theorem 6.1) are only paid
/// for rows still open; decided rows are never re-tested because
/// decidedness is monotone in the sample.
#[derive(Debug, Clone)]
pub struct SemijoinState<'i> {
    instance: &'i Instance,
    sample: SemijoinSample,
    status: Vec<RowStatus>,
    /// Rows still open, ascending.
    open: Vec<usize>,
    /// Number of distinct witness signatures per row (sample-independent).
    diversity: Vec<usize>,
    consistent: bool,
    /// The witness predicate of the latest consistency proof — the solver's
    /// exponential work is not thrown away after each answer.
    witness: Option<BitSet>,
}

impl<'i> SemijoinState<'i> {
    /// Classifies every row once and caches the partition.
    pub fn new(instance: &'i Instance) -> Self {
        let sample = SemijoinSample::new();
        let rows = instance.r().len();
        let mut status = Vec::with_capacity(rows);
        let mut open = Vec::new();
        let mut diversity = Vec::with_capacity(rows);
        for r in 0..rows {
            let s = row_status(instance, &sample, r);
            if s == RowStatus::Open {
                open.push(r);
            }
            status.push(s);
            let sigs: HashSet<BitSet> = (0..instance.p().len())
                .map(|pi| instance.signature(r, pi))
                .collect();
            diversity.push(sigs.len());
        }
        let witness = find_consistent_semijoin(instance, &sample);
        SemijoinState {
            instance,
            sample,
            status,
            open,
            diversity,
            consistent: witness.is_some(),
            witness,
        }
    }

    /// The current sample.
    pub fn sample(&self) -> &SemijoinSample {
        &self.sample
    }

    /// The cached status of row `r`.
    pub fn status(&self, r: usize) -> RowStatus {
        self.status[r]
    }

    /// Rows still worth asking about, ascending.
    pub fn open_rows(&self) -> &[usize] {
        &self.open
    }

    /// Whether a consistent semijoin predicate still exists.
    pub fn is_consistent(&self) -> bool {
        self.consistent
    }

    /// The witness predicate from the latest consistency proof, if the
    /// answers are still consistent.
    pub fn witness(&self) -> Option<&BitSet> {
        self.witness.as_ref()
    }

    /// The witness-diversity pick among the cached open rows (same
    /// heuristic as the free function [`pick_next`]).
    pub fn pick_next(&self) -> Option<usize> {
        self.open
            .iter()
            .copied()
            .max_by_key(|&r| (self.diversity[r], usize::MAX - r))
    }

    /// Records an answer for row `r` and re-tests only the remaining open
    /// rows. Returns `false` if the answers have become inconsistent.
    pub fn apply(&mut self, r: usize, positive: bool) -> bool {
        if positive {
            self.sample.add_positive(r);
            self.status[r] = RowStatus::Positive;
        } else {
            self.sample.add_negative(r);
            self.status[r] = RowStatus::Negative;
        }
        self.open.retain(|&o| o != r);
        self.witness = if self.consistent {
            find_consistent_semijoin(self.instance, &self.sample)
        } else {
            None
        };
        self.consistent = self.witness.is_some();
        if !self.consistent {
            return false;
        }
        let instance = self.instance;
        let sample = &self.sample;
        let status = &mut self.status;
        self.open.retain(|&o| {
            let s = row_status(instance, sample, o);
            status[o] = s;
            s == RowStatus::Open
        });
        true
    }
}

/// Runs the interactive loop: ask about open rows until none remain, then
/// return a consistent predicate. Returns `None` if the oracle's answers
/// are inconsistent (no semijoin predicate explains them) — which a
/// [`GoalOracle`] never produces.
///
/// One [`SemijoinState`] is threaded through the loop, so each step costs
/// solver calls proportional to the number of *open* rows, not `|R|`.
pub fn run_interactive(
    instance: &Instance,
    oracle: &mut dyn SemijoinOracle,
) -> Option<SemijoinRun> {
    let mut state = SemijoinState::new(instance);
    let mut interactions = 0usize;
    while let Some(r) = state.pick_next() {
        interactions += 1;
        let wants = oracle.wants(instance, r);
        if !state.apply(r, wants) {
            return None;
        }
    }
    let predicate = state.witness()?.clone();
    Some(SemijoinRun {
        predicate,
        interactions,
        sample: state.sample().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_core::paper::example_2_1;
    use jqi_core::predicate_from_names;

    #[test]
    fn goal_semijoins_are_recovered_semantically() {
        let inst = example_2_1();
        // All size-≤1 goals plus the paper's §6 example predicate.
        let mut goals = vec![inst.pairs().bottom()];
        for k in 0..inst.pairs().len() {
            goals.push(BitSet::from_iter(inst.pairs().len(), [k]));
        }
        goals.push(predicate_from_names(&inst, &[("A1", "B1"), ("A2", "B3")]).unwrap());
        for goal in goals {
            let mut oracle = GoalOracle(goal.clone());
            let run =
                run_interactive(&inst, &mut oracle).expect("goal oracles answer consistently");
            assert_eq!(
                inst.semijoin(&run.predicate),
                inst.semijoin(&goal),
                "semijoin result mismatch for {goal:?}"
            );
            assert!(run.interactions <= inst.r().len());
        }
    }

    #[test]
    fn decided_rows_are_not_asked() {
        let inst = example_2_1();
        // After labeling t1 and t2 positive and t3 negative, check that any
        // row reported non-open indeed has a forced label.
        let sample = SemijoinSample::from_rows(vec![0, 1], vec![2]);
        for r in 0..inst.r().len() {
            match row_status(&inst, &sample, r) {
                RowStatus::Open => {}
                RowStatus::Positive => {
                    let mut as_neg = sample.clone();
                    as_neg.add_negative(r);
                    assert!(find_consistent_semijoin(&inst, &as_neg).is_none());
                }
                RowStatus::Negative => {
                    let mut as_pos = sample.clone();
                    as_pos.add_positive(r);
                    assert!(find_consistent_semijoin(&inst, &as_pos).is_none());
                }
            }
        }
    }

    #[test]
    fn empty_p_means_everything_is_forced_negative() {
        use jqi_relation::{InstanceBuilder, Value};
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(1)]);
        b.row_r(&[Value::int(2)]);
        let inst = b.build().unwrap();
        let sample = SemijoinSample::new();
        for r in 0..2 {
            assert_eq!(row_status(&inst, &sample, r), RowStatus::Negative);
        }
        // Nothing to ask; loop terminates immediately with 0 questions.
        let mut oracle = GoalOracle(inst.pairs().omega());
        let run = run_interactive(&inst, &mut oracle).unwrap();
        assert_eq!(run.interactions, 0);
    }

    #[test]
    fn forced_rows_shield_the_loop_from_inconsistent_oracles() {
        use jqi_relation::InstanceBuilder;
        // Two identical R rows: any predicate treats them alike. An oracle
        // wanting exactly one of them is self-contradictory — but the loop
        // never finds out: after the first answer, the twin row's label is
        // *forced* and it is never asked (the semijoin analogue of §4.1's
        // remark that informative-only questioning cannot become
        // inconsistent).
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A1", "A2"]);
        b.relation_p("P", &["B1", "B2"]);
        b.row_r_ints(&[1, 2]); // row 0: twin of row 1
        b.row_r_ints(&[1, 2]); // row 1
        b.row_r_ints(&[3, 4]); // row 2: matches nothing
        b.row_p_ints(&[1, 9]);
        b.row_p_ints(&[8, 2]);
        let inst = b.build().unwrap();
        struct OneOnly;
        impl SemijoinOracle for OneOnly {
            fn wants(&mut self, _: &Instance, r: usize) -> bool {
                r == 0
            }
        }
        let run = run_interactive(&inst, &mut OneOnly).expect("loop cannot error");
        // Row 0 is asked (answer +); row 1 then becomes forced-positive and
        // is never asked, so its contradictory would-be answer never
        // surfaces; row 2 is asked (answer −).
        assert_eq!(run.interactions, 2, "the twin row is forced, not asked");
        assert_eq!(run.sample.positives(), &[0]);
        assert_eq!(run.sample.negatives(), &[2]);
        assert_eq!(row_status(&inst, &run.sample, 1), RowStatus::Positive);
    }

    #[test]
    fn state_matches_from_scratch_classification() {
        // Drive a session with the incremental state and re-derive the row
        // partition from scratch after every answer: they must agree, and
        // so must the picks.
        let inst = example_2_1();
        let goal = predicate_from_names(&inst, &[("A1", "B1"), ("A2", "B3")]).unwrap();
        let mut oracle = GoalOracle(goal);
        let mut state = SemijoinState::new(&inst);
        loop {
            // From-scratch comparison.
            assert_eq!(
                state.open_rows().to_vec(),
                open_rows(&inst, state.sample()),
                "open sets diverge"
            );
            for r in 0..inst.r().len() {
                assert_eq!(
                    state.status(r),
                    row_status(&inst, state.sample(), r),
                    "status diverges for row {r}"
                );
            }
            assert_eq!(state.pick_next(), pick_next(&inst, state.sample()));
            let Some(r) = state.pick_next() else { break };
            let wants = oracle.wants(&inst, r);
            assert!(state.apply(r, wants), "goal oracle stays consistent");
        }
        assert!(state.is_consistent());
    }

    #[test]
    fn pick_next_prefers_witness_diversity() {
        use jqi_relation::InstanceBuilder;
        // Row 0 has two distinct witness signatures, row 1 only one.
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A1", "A2"]);
        b.relation_p("P", &["B1", "B2"]);
        b.row_r_ints(&[1, 2]); // matches (1,_) and (_,2) differently
        b.row_r_ints(&[9, 9]); // matches nothing
        b.row_p_ints(&[1, 5]);
        b.row_p_ints(&[6, 2]);
        let inst = b.build().unwrap();
        let sample = SemijoinSample::new();
        // Row 1 is forced negative (no witness), so only row 0 is open.
        assert_eq!(pick_next(&inst, &sample), Some(0));
    }
}
