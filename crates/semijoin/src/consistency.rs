//! An exact solver for `CONS⋉` (Theorem 6.1).
//!
//! A semijoin predicate `θ` selects an R-row `t` iff some P-row `t′`
//! *witnesses* it: `θ ⊆ T(t, t′)`. Hence `θ` is consistent with a sample
//! iff there is a choice of one witness per positive row such that
//! `θ ⊆ ⋂ᵢ T(tᵢ, wᵢ)` and `θ` selects no negative row. Because the join is
//! anti-monotone in `θ`, it suffices to test the *maximal* candidate
//! `θ* = ⋂ᵢ T(tᵢ, wᵢ)` for each witness assignment: if `θ*` selects a
//! negative row, every `θ ⊆ θ*` does too.
//!
//! The solver performs a depth-first search over witness assignments with
//! three reductions that keep typical instances fast without affecting
//! completeness (the problem stays NP-complete — see [`crate::reduction`]
//! for the hard family):
//!
//! 1. only `⊆`-maximal witness signatures per positive row are considered;
//! 2. a partial intersection that already selects a negative row is pruned;
//! 3. failed `(depth, intersection)` states are memoized.

use crate::sample::SemijoinSample;
use jqi_relation::{BitSet, Instance};
use std::collections::HashSet;

/// Keeps only the `⊆`-maximal bitsets of `sets` (deduplicated).
fn maximal_only(mut sets: Vec<BitSet>) -> Vec<BitSet> {
    sets.sort();
    sets.dedup();
    let keep: Vec<bool> = sets
        .iter()
        .map(|s| !sets.iter().any(|o| s.is_proper_subset(o)))
        .collect();
    sets.into_iter()
        .zip(keep)
        .filter_map(|(s, k)| k.then_some(s))
        .collect()
}

/// The solver's precomputed view of one consistency query.
struct Search {
    /// Per positive row: its `⊆`-maximal witness signatures.
    witnesses: Vec<Vec<BitSet>>,
    /// `⊆`-maximal forbidden signatures: `θ` selects a negative row iff
    /// `θ ⊆ f` for some `f` here.
    forbidden: Vec<BitSet>,
    /// Failed `(depth, intersection)` states.
    memo: HashSet<(usize, BitSet)>,
}

impl Search {
    fn selects_negative(&self, theta: &BitSet) -> bool {
        self.forbidden.iter().any(|f| theta.is_subset(f))
    }

    /// DFS over witness choices for positives `depth..`.
    fn dfs(&mut self, depth: usize, inter: &BitSet) -> Option<BitSet> {
        if self.selects_negative(inter) {
            return None; // any θ ⊆ inter also selects the negative
        }
        if depth == self.witnesses.len() {
            return Some(inter.clone());
        }
        let key = (depth, inter.clone());
        if self.memo.contains(&key) {
            return None;
        }
        for w in self.witnesses[depth].clone() {
            let next = inter.intersection(&w);
            if let Some(theta) = self.dfs(depth + 1, &next) {
                return Some(theta);
            }
        }
        self.memo.insert(key);
        None
    }
}

/// Decides `CONS⋉`: returns a semijoin predicate consistent with `sample`
/// (the maximal one for some witness assignment), or `None` if none exists.
///
/// Worst-case exponential in `|S⁺|` (Theorem 6.1 rules out anything
/// polynomial unless P = NP), but heavily pruned in practice.
pub fn find_consistent_semijoin(instance: &Instance, sample: &SemijoinSample) -> Option<BitSet> {
    let omega = instance.pairs().omega();
    // Forbidden signatures from the negative rows.
    let mut forbidden: Vec<BitSet> = Vec::new();
    for &nr in sample.negatives() {
        for pi in 0..instance.p().len() {
            forbidden.push(instance.signature(nr, pi));
        }
    }
    let forbidden = maximal_only(forbidden);

    // Witness signatures per positive row.
    let mut witnesses: Vec<Vec<BitSet>> = Vec::with_capacity(sample.positives().len());
    for &pr in sample.positives() {
        let sigs: Vec<BitSet> = (0..instance.p().len())
            .map(|pi| instance.signature(pr, pi))
            .collect();
        let sigs = maximal_only(sigs);
        if sigs.is_empty() {
            return None; // P is empty: no positive row can be selected
        }
        witnesses.push(sigs);
    }
    // Fail-first: positives with the fewest witness options first.
    witnesses.sort_by_key(Vec::len);

    let mut search = Search {
        witnesses,
        forbidden,
        memo: HashSet::new(),
    };
    let theta = search.dfs(0, &omega)?;
    debug_assert!(sample.admits(instance, &theta));
    Some(theta)
}

/// Brute-force reference decision procedure: enumerates all `θ ⊆ Ω`.
/// Exponential in `|Ω|`; only for cross-validation on tiny instances.
pub fn exists_consistent_brute_force(instance: &Instance, sample: &SemijoinSample) -> bool {
    let nbits = instance.pairs().len();
    assert!(nbits <= 24, "brute force limited to tiny pair spaces");
    (0u64..(1u64 << nbits)).any(|mask| {
        let theta = BitSet::from_iter(nbits, (0..nbits).filter(|&b| mask >> b & 1 == 1));
        sample.admits(instance, &theta)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_core::paper::example_2_1;
    use jqi_relation::{InstanceBuilder, Value};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn section_6_example_is_consistent() {
        let inst = example_2_1();
        let s = SemijoinSample::from_rows(vec![0, 1], vec![2]);
        let theta = find_consistent_semijoin(&inst, &s).expect("consistent");
        assert!(s.admits(&inst, &theta));
    }

    #[test]
    fn unsatisfiable_sample_detected() {
        // R has two identical rows labeled oppositely: no θ can separate
        // them (they have identical witness signatures).
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(1)]);
        b.row_r(&[Value::int(1)]);
        b.row_p(&[Value::int(1)]);
        let inst = b.build().unwrap();
        let s = SemijoinSample::from_rows(vec![0], vec![1]);
        assert!(find_consistent_semijoin(&inst, &s).is_none());
        assert!(!exists_consistent_brute_force(&inst, &s));
    }

    #[test]
    fn empty_p_relation() {
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(1)]);
        let inst = b.build().unwrap();
        // A positive example cannot be witnessed by an empty P.
        let s = SemijoinSample::from_rows(vec![0], vec![]);
        assert!(find_consistent_semijoin(&inst, &s).is_none());
        // Negatives alone are fine: Ω (or anything nonempty) selects nothing.
        let s = SemijoinSample::from_rows(vec![], vec![0]);
        assert!(find_consistent_semijoin(&inst, &s).is_some());
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..60 {
            let rows_r = rng.gen_range(2..6);
            let rows_p = rng.gen_range(1..5);
            let vals = rng.gen_range(2..4);
            let mut b = InstanceBuilder::new();
            b.relation_r("R", &["A1", "A2"]);
            b.relation_p("P", &["B1", "B2"]);
            for _ in 0..rows_r {
                b.row_r_ints(&[rng.gen_range(0..vals), rng.gen_range(0..vals)]);
            }
            for _ in 0..rows_p {
                b.row_p_ints(&[rng.gen_range(0..vals), rng.gen_range(0..vals)]);
            }
            let inst = b.build().unwrap();
            // Random disjoint labeling.
            let mut pos = Vec::new();
            let mut neg = Vec::new();
            for r in 0..rows_r as usize {
                match rng.gen_range(0..3) {
                    0 => pos.push(r),
                    1 => neg.push(r),
                    _ => {}
                }
            }
            let s = SemijoinSample::from_rows(pos, neg);
            let exact = find_consistent_semijoin(&inst, &s);
            let brute = exists_consistent_brute_force(&inst, &s);
            assert_eq!(exact.is_some(), brute, "solver/brute-force mismatch");
            if let Some(theta) = exact {
                assert!(s.admits(&inst, &theta), "returned θ must be consistent");
            }
        }
    }

    #[test]
    fn maximal_only_keeps_antichain() {
        let a = BitSet::from_iter(6, [0, 1]);
        let b = BitSet::from_iter(6, [0]);
        let c = BitSet::from_iter(6, [2, 3]);
        let out = maximal_only(vec![a.clone(), b, c.clone(), a.clone()]);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&a) && out.contains(&c));
    }

    #[test]
    fn negative_only_sample_yields_omega_like_predicate() {
        let inst = example_2_1();
        let s = SemijoinSample::from_rows(vec![], vec![2]);
        let theta = find_consistent_semijoin(&inst, &s).expect("Ω avoids t3");
        assert!(s.admits(&inst, &theta));
    }
}
