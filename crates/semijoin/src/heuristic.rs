//! Greedy heuristics for semijoin consistency and inference.
//!
//! Theorem 6.1 precludes an efficient exact interactive scenario for
//! semijoins; the paper's future work asks for heuristics instead. This
//! module provides the natural greedy one: process positive rows in
//! fail-first order and commit, for each, to the witness whose signature
//! keeps the running intersection as large as possible (breaking ties
//! toward intersections that avoid the forbidden signatures). The result is
//! sound — a returned predicate is always consistent — but incomplete: the
//! greedy commitment can dead-end where backtracking would succeed, which
//! the tests demonstrate on a crafted instance.

use crate::sample::SemijoinSample;
use jqi_relation::{BitSet, Instance};

/// One greedy pass. Returns a consistent semijoin predicate or `None` if
/// the greedy choices dead-end (which does *not* imply inconsistency — use
/// [`crate::consistency::find_consistent_semijoin`] for an exact answer).
pub fn greedy_consistent_semijoin(instance: &Instance, sample: &SemijoinSample) -> Option<BitSet> {
    // Forbidden signatures (⊆-maximality not required for correctness).
    let forbidden: Vec<BitSet> = sample
        .negatives()
        .iter()
        .flat_map(|&nr| (0..instance.p().len()).map(move |pi| instance.signature(nr, pi)))
        .collect();
    let selects_negative = |theta: &BitSet| forbidden.iter().any(|f| theta.is_subset(f));

    // Witness signatures per positive, fewest-first.
    let mut witnesses: Vec<Vec<BitSet>> = sample
        .positives()
        .iter()
        .map(|&pr| {
            (0..instance.p().len())
                .map(|pi| instance.signature(pr, pi))
                .collect()
        })
        .collect();
    witnesses.sort_by_key(Vec::len);

    let mut inter = instance.pairs().omega();
    if selects_negative(&inter) {
        return None;
    }
    for options in witnesses {
        // Greedy: the candidate intersection with the most pairs that does
        // not select a negative; ties toward the first option.
        let best = options
            .iter()
            .map(|w| inter.intersection(w))
            .filter(|cand| !selects_negative(cand))
            .max_by_key(BitSet::len)?;
        inter = best;
    }
    debug_assert!(sample.admits(instance, &inter));
    Some(inter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::find_consistent_semijoin;
    use jqi_core::paper::example_2_1;
    use jqi_relation::{InstanceBuilder, Value};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn greedy_solves_the_section_6_example() {
        let inst = example_2_1();
        let s = SemijoinSample::from_rows(vec![0, 1], vec![2]);
        let theta = greedy_consistent_semijoin(&inst, &s).expect("easy instance");
        assert!(s.admits(&inst, &theta));
    }

    #[test]
    fn greedy_is_sound_on_random_instances() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut solved = 0usize;
        let mut total = 0usize;
        for _ in 0..60 {
            let mut b = InstanceBuilder::new();
            b.relation_r("R", &["A1", "A2"]);
            b.relation_p("P", &["B1", "B2"]);
            for _ in 0..rng.gen_range(2..6) {
                b.row_r_ints(&[rng.gen_range(0..3), rng.gen_range(0..3)]);
            }
            for _ in 0..rng.gen_range(1..5) {
                b.row_p_ints(&[rng.gen_range(0..3), rng.gen_range(0..3)]);
            }
            let inst = b.build().unwrap();
            let rows = inst.r().len();
            let mut pos = Vec::new();
            let mut neg = Vec::new();
            for r in 0..rows {
                match rng.gen_range(0..3) {
                    0 => pos.push(r),
                    1 => neg.push(r),
                    _ => {}
                }
            }
            let s = SemijoinSample::from_rows(pos, neg);
            let exact = find_consistent_semijoin(&inst, &s);
            if exact.is_some() {
                total += 1;
            }
            if let Some(theta) = greedy_consistent_semijoin(&inst, &s) {
                // Soundness: greedy answers are always truly consistent.
                assert!(s.admits(&inst, &theta));
                assert!(exact.is_some(), "greedy found θ where exact says none");
                solved += 1;
            }
        }
        // Effectiveness: greedy solves a healthy share of solvable cases.
        assert!(solved * 2 >= total, "greedy solved only {solved}/{total}");
    }

    #[test]
    fn greedy_can_dead_end_where_exact_succeeds() {
        // Crafted dead end. Signatures:
        //   pos0 = (1,2): {(A1,B1),(A2,B2)} via w1, {(A2,B3)} via w2,
        //                 {(A1,B1)} via w3.
        //   pos1 = (1,7): {(A1,B1)} via w1, ∅ via w2,
        //                 {(A1,B1),(A2,B3)} via w3.
        //   neg  = (1,8): at most {(A1,B1)} — so θ is forbidden iff
        //                 θ ⊆ {(A1,B1)}.
        // Greedy commits pos0 to the size-2 witness {(A1,B1),(A2,B2)}; every
        // pos1 option then intersects to a subset of {(A1,B1)} — dead end.
        // Exact backtracking instead picks {(A2,B3)} for pos0 and succeeds.
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A1", "A2"]);
        b.relation_p("P", &["B1", "B2", "B3"]);
        b.row_r_ints(&[1, 2]); // pos0
        b.row_r_ints(&[1, 7]); // pos1
        b.row_r_ints(&[1, 8]); // neg: T(neg, w) ⊇ {(A1,B1)} for w1/w3
        b.row_p(&[Value::int(1), Value::int(2), Value::int(0)]); // wBig for pos0
        b.row_p(&[Value::int(9), Value::int(0), Value::int(2)]); // wSmall: A2=2=B3
        b.row_p(&[Value::int(1), Value::int(0), Value::int(7)]); // pos1's witness
        let inst = b.build().unwrap();
        // Check the signature layout matches the comment.
        let s = SemijoinSample::from_rows(vec![0, 1], vec![2]);
        let exact = find_consistent_semijoin(&inst, &s);
        assert!(exact.is_some(), "exact solver must succeed");
        // pos1 also matches wSmall? T(pos1, wSmall): A1=1 vs (9,0,2) no;
        // A2=7 vs (9,0,2) no → ∅. ∅ selects the negative, so pos1's only
        // useful witness is w3 = {(A1,B1),(A2,B3)}.
        let greedy = greedy_consistent_semijoin(&inst, &s);
        assert!(
            greedy.is_none(),
            "greedy was expected to dead-end on the crafted instance, got {greedy:?}"
        );
    }

    #[test]
    fn greedy_rejects_immediately_selected_negative() {
        // A negative row equal to a P row ⇒ Ω itself selects it.
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(1)]);
        b.row_p(&[Value::int(1)]);
        let inst = b.build().unwrap();
        let s = SemijoinSample::from_rows(vec![], vec![0]);
        assert!(greedy_consistent_semijoin(&inst, &s).is_none());
    }
}
