//! Semijoin predicate inference and its intractability (§6).
//!
//! Adding projection to the queries — i.e. inferring semijoin predicates
//! `R ⋉θ P` from labeled *R-rows* instead of labeled product tuples —
//! makes the fundamental consistency problem NP-complete (Theorem 6.1).
//! This crate contains everything the paper's §6 and appendix need:
//!
//! * [`sample`] — samples over R-rows and semantic consistency of a
//!   predicate with a sample.
//! * [`consistency`] — an exact solver for `CONS⋉` (witness search with
//!   subset pruning); worst-case exponential, as Theorem 6.1 predicts.
//! * [`sat`] — a CNF representation, a DPLL SAT solver, and a random 3SAT
//!   generator.
//! * [`reduction`] — the appendix's 3SAT → `CONS⋉` reduction
//!   `φ ↦ (Rφ, Pφ, Sφ)`, used to cross-validate the exact solver against
//!   DPLL and to generate hard benchmark families.
//! * [`heuristic`] — the greedy inference heuristic the paper lists as
//!   future work ("we would like to design heuristics for the interactive
//!   inference of semijoins").
//! * [`interactive`] — the exact interactive semijoin scenario: ask only
//!   about rows whose label is not forced, at the (unavoidable) price of
//!   NP-hard informativeness tests.
//! * [`minimality`] — brute-force minimality checks for positive-only
//!   samples (the paper's early attempt: coNP-complete).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consistency;
pub mod heuristic;
pub mod interactive;
pub mod minimality;
pub mod reduction;
pub mod sample;
pub mod sat;

pub use consistency::find_consistent_semijoin;
pub use sample::SemijoinSample;
pub use sat::{dpll, Cnf};
