//! The appendix's reduction 3SAT → `CONS⋉` (proof of Theorem 6.1).
//!
//! Given `φ = c₁ ∧ … ∧ c_k` in 3CNF over variables `x₁, …, x_n`, build:
//!
//! * `Rφ(idR, A₁, …, A_n)` with one positive row per clause
//!   (`idR = cᵢ⁺`, `Aⱼ = j`), one negative row `X` and one negative row
//!   `xᵢ⁻` per variable — all with `Aⱼ = j`.
//! * `Pφ(idP, B₁ᵗ, B₁ᶠ, …, B_nᵗ, B_nᶠ)` with, per clause `cᵢ` and literal
//!   over variable `x_kl`, a tuple carrying `idP = cᵢ⁺` whose `B`-columns
//!   equal `j` except on `x_kl`, where exactly the column matching the
//!   literal's polarity keeps `j` and the other holds `⊥`; plus the `Y`
//!   row (everything equal) and one `xᵢ⁻` row per variable with both
//!   `Bᵢ`-columns `⊥`.
//! * The sample labels the clause rows positive and the `X`/`xᵢ⁻` rows
//!   negative.
//!
//! Then `φ` is satisfiable iff `(Rφ, Pφ, Sφ) ∈ CONS⋉`, and a consistent
//! predicate encodes a satisfying valuation in which of `(Aᵢ, Bᵢᵗ)` /
//! `(Aᵢ, Bᵢᶠ)` it contains.

use crate::sample::SemijoinSample;
use crate::sat::Cnf;
use jqi_relation::{BitSet, Instance, InstanceBuilder, Value};

/// The output of the reduction: an instance plus the labeled sample.
#[derive(Debug, Clone)]
pub struct ReducedInstance {
    /// The two-relation instance `(Rφ, Pφ)`.
    pub instance: Instance,
    /// The sample `Sφ` over `Rφ`'s rows.
    pub sample: SemijoinSample,
    /// Number of variables of the source formula.
    pub num_vars: usize,
}

/// The distinguished `⊥` value: a string, so it never equals the integer
/// payload values and never appears in `Rφ`.
fn bot() -> Value {
    Value::str("⊥")
}

/// Builds `(Rφ, Pφ, Sφ)` from a 3CNF formula. Clauses may have any arity
/// `≥ 1` (the construction generalizes verbatim).
pub fn reduce(cnf: &Cnf) -> ReducedInstance {
    let n = cnf.num_vars;
    let k = cnf.clauses.len();

    let mut b = InstanceBuilder::new();
    let r_attrs: Vec<String> = std::iter::once("idR".to_string())
        .chain((1..=n).map(|j| format!("A{j}")))
        .collect();
    let p_attrs: Vec<String> = std::iter::once("idP".to_string())
        .chain((1..=n).flat_map(|j| [format!("B{j}t"), format!("B{j}f")]))
        .collect();
    let r_refs: Vec<&str> = r_attrs.iter().map(String::as_str).collect();
    let p_refs: Vec<&str> = p_attrs.iter().map(String::as_str).collect();
    b.relation_r("Rphi", &r_refs);
    b.relation_p("Pphi", &p_refs);

    let payload: Vec<Value> = (1..=n as i64).map(Value::int).collect();

    // Rφ: clause rows (positive), then X and x_i^- rows (negative).
    for i in 1..=k {
        let mut row = vec![Value::str(format!("c{i}+"))];
        row.extend(payload.iter().cloned());
        b.row_r(&row);
    }
    {
        let mut row = vec![Value::str("X")];
        row.extend(payload.iter().cloned());
        b.row_r(&row);
    }
    for i in 1..=n {
        let mut row = vec![Value::str(format!("x{i}-"))];
        row.extend(payload.iter().cloned());
        b.row_r(&row);
    }

    // Pφ: one row per clause literal.
    for (ci, clause) in cnf.clauses.iter().enumerate() {
        for &lit in clause {
            let kl = lit.unsigned_abs() as usize;
            let mut row = vec![Value::str(format!("c{}+", ci + 1))];
            for j in 1..=n {
                if j != kl {
                    row.push(Value::int(j as i64)); // B_j^t
                    row.push(Value::int(j as i64)); // B_j^f
                } else if lit > 0 {
                    row.push(Value::int(j as i64)); // B_j^t = j
                    row.push(bot()); // B_j^f = ⊥
                } else {
                    row.push(bot()); // B_j^t = ⊥
                    row.push(Value::int(j as i64)); // B_j^f = j
                }
            }
            b.row_p(&row);
        }
    }
    // The Y row: everything equal.
    {
        let mut row = vec![Value::str("Y")];
        for j in 1..=n {
            row.push(Value::int(j as i64));
            row.push(Value::int(j as i64));
        }
        b.row_p(&row);
    }
    // The x_i^- rows: both B_i columns ⊥, everything else equal.
    for i in 1..=n {
        let mut row = vec![Value::str(format!("x{i}-"))];
        for j in 1..=n {
            if j == i {
                row.push(bot());
                row.push(bot());
            } else {
                row.push(Value::int(j as i64));
                row.push(Value::int(j as i64));
            }
        }
        b.row_p(&row);
    }

    let instance = b.build().expect("reduction instance is well-formed");
    let sample = SemijoinSample::from_rows(
        (0..k).collect::<Vec<_>>(),
        (k..k + 1 + n).collect::<Vec<_>>(),
    );
    ReducedInstance {
        instance,
        sample,
        num_vars: n,
    }
}

/// Decodes a satisfying valuation from a consistent semijoin predicate:
/// `xᵢ = true` iff `(Aᵢ, Bᵢᵗ) ∈ θ` (the appendix's only-if direction shows a
/// consistent θ contains at least one of the two `Bᵢ` pairs per variable;
/// if it contains only the `f` pair the valuation is `false`).
pub fn decode_valuation(reduced: &ReducedInstance, theta: &BitSet) -> Vec<bool> {
    let inst = &reduced.instance;
    (1..=reduced.num_vars)
        .map(|i| {
            let a = format!("A{i}");
            let bt = format!("B{i}t");
            let idx = inst
                .pair_index_by_name(&a, &bt)
                .expect("reduction attributes exist");
            theta.contains(idx)
        })
        .collect()
}

/// Encodes a valuation as the appendix's canonical consistent predicate
/// `θ₀ = {(idR, idP)} ∪ {(Aᵢ, Bᵢ^{v(xᵢ)})}`.
pub fn encode_valuation(reduced: &ReducedInstance, valuation: &[bool]) -> BitSet {
    assert_eq!(valuation.len(), reduced.num_vars);
    let inst = &reduced.instance;
    let mut theta = inst.pairs().bottom();
    theta.insert(inst.pair_index_by_name("idR", "idP").expect("id pair"));
    for (i, &v) in valuation.iter().enumerate() {
        let a = format!("A{}", i + 1);
        let b = format!("B{}{}", i + 1, if v { "t" } else { "f" });
        theta.insert(inst.pair_index_by_name(&a, &b).expect("valuation pair"));
    }
    theta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::find_consistent_semijoin;
    use crate::sat::{dpll, random_3sat, Cnf};

    fn phi0() -> Cnf {
        // The appendix's example: φ0 = (x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ x3 ∨ x4).
        Cnf::new(4, vec![vec![1, 2, 3], vec![-1, 3, 4]])
    }

    #[test]
    fn phi0_shapes_match_the_appendix() {
        let red = reduce(&phi0());
        let inst = &red.instance;
        // Rφ0: 2 clause rows + X + 4 variable rows = 7.
        assert_eq!(inst.r().len(), 7);
        // Pφ0: 6 literal rows + Y + 4 variable rows = 11.
        assert_eq!(inst.p().len(), 11);
        assert_eq!(inst.r().schema().arity(), 1 + 4);
        assert_eq!(inst.p().schema().arity(), 1 + 2 * 4);
        assert_eq!(red.sample.positives(), &[0, 1]);
        assert_eq!(red.sample.negatives(), &[2, 3, 4, 5, 6]);
    }

    #[test]
    fn phi0_is_in_cons_semijoin() {
        let red = reduce(&phi0());
        let theta = find_consistent_semijoin(&red.instance, &red.sample).expect("φ0 is sat");
        assert!(red.sample.admits(&red.instance, &theta));
        // The decoded valuation satisfies φ0.
        let v = decode_valuation(&red, &theta);
        assert!(phi0().is_satisfied_by(&v));
    }

    #[test]
    fn encoded_valuation_is_consistent_iff_it_satisfies() {
        let cnf = phi0();
        let red = reduce(&cnf);
        // x3 = true satisfies both clauses.
        let good = encode_valuation(&red, &[false, false, true, false]);
        assert!(red.sample.admits(&red.instance, &good));
        // x-all-false falsifies clause 1.
        let bad = encode_valuation(&red, &[false, false, false, false]);
        assert!(!red.sample.admits(&red.instance, &bad));
    }

    #[test]
    fn unsat_formula_reduces_to_inconsistent_sample() {
        // (x1)(¬x1) padded to 3 literals via duplicates is not allowed
        // (distinct vars); use x1∨x2∨x3 in all polarity combinations over
        // the same 3 variables: the 8 clauses force a contradiction.
        let mut clauses = Vec::new();
        for mask in 0..8 {
            let lits: Vec<i32> = (1..=3)
                .map(|v| if mask >> (v - 1) & 1 == 1 { v } else { -v })
                .collect();
            clauses.push(lits);
        }
        let cnf = Cnf::new(3, clauses);
        assert!(dpll(&cnf).is_none());
        let red = reduce(&cnf);
        assert!(find_consistent_semijoin(&red.instance, &red.sample).is_none());
    }

    /// The headline cross-validation: solver(reduce(φ)) ⇔ DPLL(φ) on random
    /// 3SAT formulas around the phase transition.
    #[test]
    fn solver_agrees_with_dpll_on_random_formulas() {
        for seed in 0..25 {
            let cnf = random_3sat(5, 21, seed);
            let sat = dpll(&cnf).is_some();
            let red = reduce(&cnf);
            let cons = find_consistent_semijoin(&red.instance, &red.sample);
            assert_eq!(
                cons.is_some(),
                sat,
                "reduction/solver disagree with DPLL for seed {seed}"
            );
            if let Some(theta) = cons {
                let v = decode_valuation(&red, &theta);
                assert!(
                    cnf.is_satisfied_by(&v),
                    "decoded valuation wrong, seed {seed}"
                );
            }
        }
    }

    #[test]
    fn satisfying_assignment_round_trips() {
        for seed in 0..10 {
            let cnf = random_3sat(6, 10, seed); // under-constrained: mostly sat
            if let Some(a) = dpll(&cnf) {
                let red = reduce(&cnf);
                let theta = encode_valuation(&red, &a);
                assert!(red.sample.admits(&red.instance, &theta));
                assert_eq!(decode_valuation(&red, &theta), a);
            }
        }
    }
}
