//! CNF formulas, a DPLL SAT solver, and a random 3SAT generator.
//!
//! The appendix proves `CONS⋉` NP-complete by reduction from 3SAT. To
//! cross-validate the exact semijoin-consistency solver we need an
//! independent ground truth for satisfiability: this small DPLL solver with
//! unit propagation and pure-literal elimination. It is complete (it never
//! guesses) and fast enough for the formula sizes the benchmarks use.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A literal: positive `v` means the variable `v`, negative means its
/// negation. Variables are numbered `1..=num_vars`; `0` is invalid.
pub type Lit = i32;

/// A CNF formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables (named `1..=num_vars`).
    pub num_vars: usize,
    /// Clauses as disjunctions of literals.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates a formula, validating literal ranges.
    pub fn new(num_vars: usize, clauses: Vec<Vec<Lit>>) -> Self {
        for clause in &clauses {
            for &lit in clause {
                let v = lit.unsigned_abs() as usize;
                assert!(lit != 0 && v <= num_vars, "literal {lit} out of range");
            }
        }
        Cnf { num_vars, clauses }
    }

    /// Whether `assignment` (indexed by variable − 1) satisfies the formula.
    pub fn is_satisfied_by(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars);
        self.clauses.iter().all(|clause| {
            clause.iter().any(|&lit| {
                let v = lit.unsigned_abs() as usize - 1;
                (lit > 0) == assignment[v]
            })
        })
    }
}

/// Generates a uniform random 3SAT formula with `num_clauses` clauses over
/// `num_vars ≥ 3` variables. Each clause has three distinct variables; the
/// classic hard regime is `num_clauses ≈ 4.27 · num_vars`.
pub fn random_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> Cnf {
    assert!(num_vars >= 3, "3SAT needs at least three variables");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut clauses = Vec::with_capacity(num_clauses);
    for _ in 0..num_clauses {
        let mut vars = [0usize; 3];
        vars[0] = rng.gen_range(1..=num_vars);
        loop {
            vars[1] = rng.gen_range(1..=num_vars);
            if vars[1] != vars[0] {
                break;
            }
        }
        loop {
            vars[2] = rng.gen_range(1..=num_vars);
            if vars[2] != vars[0] && vars[2] != vars[1] {
                break;
            }
        }
        let clause: Vec<Lit> = vars
            .iter()
            .map(|&v| {
                if rng.gen_bool(0.5) {
                    v as Lit
                } else {
                    -(v as Lit)
                }
            })
            .collect();
        clauses.push(clause);
    }
    Cnf::new(num_vars, clauses)
}

/// Partial assignment state used by DPLL.
#[derive(Clone, Copy, PartialEq, Eq)]
enum VarState {
    Unassigned,
    True,
    False,
}

/// DPLL with unit propagation and pure-literal elimination. Returns a
/// satisfying assignment (indexed by variable − 1) or `None` when
/// unsatisfiable.
pub fn dpll(cnf: &Cnf) -> Option<Vec<bool>> {
    let mut state = vec![VarState::Unassigned; cnf.num_vars];
    if solve(cnf, &mut state) {
        Some(
            state
                .into_iter()
                .map(|s| s == VarState::True) // unassigned vars default false
                .collect(),
        )
    } else {
        None
    }
}

fn lit_state(state: &[VarState], lit: Lit) -> VarState {
    let v = lit.unsigned_abs() as usize - 1;
    match (state[v], lit > 0) {
        (VarState::Unassigned, _) => VarState::Unassigned,
        (VarState::True, true) | (VarState::False, false) => VarState::True,
        _ => VarState::False,
    }
}

fn solve(cnf: &Cnf, state: &mut Vec<VarState>) -> bool {
    // Unit propagation to fixpoint.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut propagated = false;
        for clause in &cnf.clauses {
            let mut unassigned: Option<Lit> = None;
            let mut satisfied = false;
            let mut unassigned_count = 0;
            for &lit in clause {
                match lit_state(state, lit) {
                    VarState::True => {
                        satisfied = true;
                        break;
                    }
                    VarState::Unassigned => {
                        unassigned_count += 1;
                        unassigned = Some(lit);
                    }
                    VarState::False => {}
                }
            }
            if satisfied {
                continue;
            }
            match unassigned_count {
                0 => {
                    // Conflict: undo the trail.
                    for &v in &trail {
                        state[v] = VarState::Unassigned;
                    }
                    return false;
                }
                1 => {
                    let lit = unassigned.expect("one unassigned literal");
                    let v = lit.unsigned_abs() as usize - 1;
                    state[v] = if lit > 0 {
                        VarState::True
                    } else {
                        VarState::False
                    };
                    trail.push(v);
                    propagated = true;
                }
                _ => {}
            }
        }
        if !propagated {
            break;
        }
    }

    // Pure-literal elimination.
    let mut seen_pos = vec![false; cnf.num_vars];
    let mut seen_neg = vec![false; cnf.num_vars];
    for clause in &cnf.clauses {
        if clause
            .iter()
            .any(|&l| lit_state(state, l) == VarState::True)
        {
            continue;
        }
        for &lit in clause {
            if lit_state(state, lit) == VarState::Unassigned {
                let v = lit.unsigned_abs() as usize - 1;
                if lit > 0 {
                    seen_pos[v] = true;
                } else {
                    seen_neg[v] = true;
                }
            }
        }
    }
    for v in 0..cnf.num_vars {
        if state[v] == VarState::Unassigned && (seen_pos[v] ^ seen_neg[v]) {
            state[v] = if seen_pos[v] {
                VarState::True
            } else {
                VarState::False
            };
            trail.push(v);
        }
    }

    // Branch on the first unassigned variable of an unsatisfied clause.
    let branch = cnf
        .clauses
        .iter()
        .filter(|c| !c.iter().any(|&l| lit_state(state, l) == VarState::True))
        .flat_map(|c| c.iter())
        .find(|&&l| lit_state(state, l) == VarState::Unassigned)
        .copied();
    let Some(lit) = branch else {
        return true; // every clause satisfied (or formula empty)
    };
    let v = lit.unsigned_abs() as usize - 1;
    for phase in [lit > 0, lit <= 0] {
        state[v] = if phase {
            VarState::True
        } else {
            VarState::False
        };
        if solve(cnf, state) {
            return true;
        }
    }
    state[v] = VarState::Unassigned;
    for &t in &trail {
        state[t] = VarState::Unassigned;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_sat(cnf: &Cnf) -> bool {
        assert!(cnf.num_vars <= 20);
        (0u64..(1 << cnf.num_vars)).any(|mask| {
            let assignment: Vec<bool> = (0..cnf.num_vars).map(|v| mask >> v & 1 == 1).collect();
            cnf.is_satisfied_by(&assignment)
        })
    }

    #[test]
    fn trivial_formulas() {
        let sat = Cnf::new(1, vec![vec![1]]);
        assert!(dpll(&sat).is_some());
        let unsat = Cnf::new(1, vec![vec![1], vec![-1]]);
        assert!(dpll(&unsat).is_none());
        let empty = Cnf::new(3, vec![]);
        assert!(dpll(&empty).is_some());
    }

    #[test]
    fn paper_example_phi0_is_satisfiable() {
        // φ0 = (x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ x3 ∨ x4)
        let phi0 = Cnf::new(4, vec![vec![1, 2, 3], vec![-1, 3, 4]]);
        let a = dpll(&phi0).expect("φ0 is satisfiable");
        assert!(phi0.is_satisfied_by(&a));
    }

    #[test]
    fn returned_assignment_always_satisfies() {
        for seed in 0..30 {
            let cnf = random_3sat(8, 30, seed);
            if let Some(a) = dpll(&cnf) {
                assert!(cnf.is_satisfied_by(&a), "bad model for seed {seed}");
            }
        }
    }

    #[test]
    fn agrees_with_brute_force() {
        for seed in 0..40 {
            // Around the phase transition: 4.3 clauses per variable.
            let cnf = random_3sat(7, 30, seed);
            assert_eq!(
                dpll(&cnf).is_some(),
                brute_force_sat(&cnf),
                "mismatch for seed {seed}"
            );
        }
    }

    #[test]
    fn pigeonhole_unsat() {
        // 3 pigeons, 2 holes: vars p_{i,j} = pigeon i in hole j,
        // var index = i*2 + j + 1 for i in 0..3, j in 0..2.
        let var = |i: usize, j: usize| (i * 2 + j + 1) as Lit;
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![var(i, 0), var(i, 1)]); // each pigeon somewhere
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    clauses.push(vec![-var(i1, j), -var(i2, j)]);
                }
            }
        }
        let cnf = Cnf::new(6, clauses);
        assert!(dpll(&cnf).is_none());
    }

    #[test]
    fn random_generator_shape() {
        let cnf = random_3sat(10, 42, 0);
        assert_eq!(cnf.num_vars, 10);
        assert_eq!(cnf.clauses.len(), 42);
        for clause in &cnf.clauses {
            assert_eq!(clause.len(), 3);
            let mut vars: Vec<u32> = clause.iter().map(|l| l.unsigned_abs()).collect();
            vars.sort();
            vars.dedup();
            assert_eq!(vars.len(), 3, "variables within a clause are distinct");
        }
        // Deterministic.
        assert_eq!(cnf, random_3sat(10, 42, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_literal_rejected() {
        Cnf::new(2, vec![vec![3]]);
    }
}
