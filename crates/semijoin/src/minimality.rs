//! Minimality of semijoin predicates under positive-only samples.
//!
//! The paper's future-work section reports an early result: *deciding the
//! minimality of a semijoin predicate in the presence of only positive
//! examples is coNP-complete*, and whether the minimal predicate is unique
//! was open. This module provides exact (exponential) procedures so the
//! phenomenon can be explored on small instances:
//!
//! * consistency with a positive-only sample is *downward closed* in `θ`
//!   (anti-monotonicity of `⋉` — [`is_consistent_positive_only`]);
//! * [`is_maximally_specific`] decides whether no proper superset stays
//!   consistent (by downward closure, checking single-pair extensions
//!   suffices — this direction is tractable);
//! * [`is_cardinality_minimal`] decides whether no consistent predicate of
//!   *smaller size* induces the same semijoin result — the expensive,
//!   coNP-flavored question — by brute-force enumeration;
//! * [`maximally_specific_predicates`] enumerates all `⊆`-maximal
//!   consistent predicates, demonstrating non-uniqueness.

use crate::sample::SemijoinSample;
use jqi_relation::{BitSet, Instance};

/// Whether `θ` selects every positive row (negatives ignored).
pub fn is_consistent_positive_only(
    instance: &Instance,
    positives: &[usize],
    theta: &BitSet,
) -> bool {
    let sample = SemijoinSample::from_rows(positives.to_vec(), vec![]);
    sample.admits(instance, theta)
}

/// Whether `θ` is consistent with `positives` and no proper superset is.
///
/// Because positive-only consistency is downward closed, it is enough to
/// test the `|Ω| − |θ|` single-pair extensions; this direction is PTIME.
pub fn is_maximally_specific(instance: &Instance, positives: &[usize], theta: &BitSet) -> bool {
    if !is_consistent_positive_only(instance, positives, theta) {
        return false;
    }
    let nbits = instance.pairs().len();
    (0..nbits).filter(|&k| !theta.contains(k)).all(|k| {
        let mut bigger = theta.clone();
        bigger.insert(k);
        !is_consistent_positive_only(instance, positives, &bigger)
    })
}

/// All `⊆`-maximal predicates consistent with the positive rows, found by
/// greedily saturating from every single witness assignment's intersection.
/// Exponential; intended for small instances. The result is deduplicated.
pub fn maximally_specific_predicates(instance: &Instance, positives: &[usize]) -> Vec<BitSet> {
    let nbits = instance.pairs().len();
    assert!(nbits <= 24, "enumeration limited to small pair spaces");
    let mut out: Vec<BitSet> = Vec::new();
    // Every maximally specific θ is an intersection of one witness
    // signature per positive (taking, for each positive, the witness whose
    // signature contains θ — the intersection contains θ and is consistent,
    // so by maximality it equals θ). Enumerate assignments.
    let witness_sigs: Vec<Vec<BitSet>> = positives
        .iter()
        .map(|&r| {
            (0..instance.p().len())
                .map(|pi| instance.signature(r, pi))
                .collect()
        })
        .collect();
    if witness_sigs.iter().any(Vec::is_empty) {
        return out; // empty P: nothing selects the positives
    }
    let mut stack: Vec<(usize, BitSet)> = vec![(0, instance.pairs().omega())];
    let mut candidates: Vec<BitSet> = Vec::new();
    while let Some((depth, inter)) = stack.pop() {
        if depth == witness_sigs.len() {
            candidates.push(inter);
            continue;
        }
        for w in &witness_sigs[depth] {
            stack.push((depth + 1, inter.intersection(w)));
        }
    }
    candidates.sort();
    candidates.dedup();
    for c in candidates {
        if !out.iter().any(|o| c.is_proper_subset(o))
            && is_maximally_specific(instance, positives, &c)
        {
            out.retain(|o| !o.is_proper_subset(&c));
            if !out.contains(&c) {
                out.push(c);
            }
        }
    }
    out.sort();
    out
}

/// Whether no consistent predicate with fewer pairs induces the same
/// semijoin result as `θ`. Brute-force over all smaller predicates —
/// exponential in `|Ω|`, as the coNP-completeness result predicts.
pub fn is_cardinality_minimal(instance: &Instance, positives: &[usize], theta: &BitSet) -> bool {
    if !is_consistent_positive_only(instance, positives, theta) {
        return false;
    }
    let nbits = instance.pairs().len();
    assert!(nbits <= 24, "brute force limited to small pair spaces");
    let result = instance.semijoin(theta);
    !(0u64..(1u64 << nbits)).any(|mask| {
        let cand = BitSet::from_iter(nbits, (0..nbits).filter(|&b| mask >> b & 1 == 1));
        cand.len() < theta.len()
            && is_consistent_positive_only(instance, positives, &cand)
            && instance.semijoin(&cand) == result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_core::paper::example_2_1;
    use jqi_core::predicate_from_names;
    use jqi_relation::{InstanceBuilder, Value};

    #[test]
    fn downward_closure_holds() {
        let inst = example_2_1();
        let positives = [0usize, 3];
        let nbits = inst.pairs().len();
        for mask in 0u64..(1 << nbits) {
            let theta = BitSet::from_iter(nbits, (0..nbits).filter(|&b| mask >> b & 1 == 1));
            if is_consistent_positive_only(&inst, &positives, &theta) {
                // Every subset is consistent too.
                for k in theta.iter() {
                    let mut smaller = theta.clone();
                    smaller.remove(k);
                    assert!(is_consistent_positive_only(&inst, &positives, &smaller));
                }
            }
        }
    }

    #[test]
    fn empty_predicate_is_consistent_but_rarely_maximal() {
        let inst = example_2_1();
        let empty = inst.pairs().bottom();
        assert!(is_consistent_positive_only(&inst, &[0, 1, 2, 3], &empty));
        assert!(!is_maximally_specific(&inst, &[0], &empty));
    }

    #[test]
    fn maximally_specific_can_be_non_unique() {
        // Positive row t1 = (0,1): its witness signatures are
        // {(A1,B3),(A2,B1),(A2,B2)}, {(A1,B1),(A2,B2)}, {(A1,B2),(A1,B3)} —
        // pairwise ⊆-incomparable, so all three are maximally specific:
        // the paper's open uniqueness question answers "not unique" here.
        let inst = example_2_1();
        let maxes = maximally_specific_predicates(&inst, &[0]);
        assert_eq!(maxes.len(), 3);
        for m in &maxes {
            assert!(is_maximally_specific(&inst, &[0], m));
        }
    }

    #[test]
    fn cardinality_minimality() {
        let inst = example_2_1();
        // θ = {(A2,B2)} selects {t1, t4}; is any smaller predicate (only ∅)
        // inducing the same semijoin? ∅ selects everything — no.
        let theta = predicate_from_names(&inst, &[("A2", "B2")]).unwrap();
        assert!(is_cardinality_minimal(&inst, &[0, 3], &theta));
        // A two-pair predicate whose result is also achievable with one
        // pair is not minimal: {(A1,B1),(A2,B2)} selects {t1}… check
        // against the one-pair candidates automatically instead of by hand.
        let theta2 = predicate_from_names(&inst, &[("A1", "B1"), ("A2", "B2")]).unwrap();
        let result = inst.semijoin(&theta2);
        let nbits = inst.pairs().len();
        let smaller_equivalent = (0..nbits).any(|k| {
            let cand = BitSet::from_iter(nbits, [k]);
            inst.semijoin(&cand) == result && is_consistent_positive_only(&inst, &result, &cand)
        });
        assert_eq!(
            !smaller_equivalent,
            is_cardinality_minimal(&inst, &result, &theta2)
        );
    }

    #[test]
    fn inconsistent_theta_is_never_minimal_or_maximal() {
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(1)]);
        b.row_p(&[Value::int(2)]);
        let inst = b.build().unwrap();
        let omega = inst.pairs().omega();
        // (A,B) never holds, so Ω is inconsistent with positive {0}.
        assert!(!is_maximally_specific(&inst, &[0], &omega));
        assert!(!is_cardinality_minimal(&inst, &[0], &omega));
    }

    #[test]
    fn empty_p_yields_no_maximal_predicates() {
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r(&[Value::int(1)]);
        let inst = b.build().unwrap();
        assert!(maximally_specific_predicates(&inst, &[0]).is_empty());
    }
}
