//! Samples over R-rows for semijoin inference (§6).
//!
//! With projection, an example is a pair `(t, α)` with `t ∈ R` — the user
//! judges rows of `R`, not product tuples. A semijoin predicate `θ` is
//! consistent with a sample `S` iff `S⁺ ⊆ R ⋉θ P` and
//! `S⁻ ∩ (R ⋉θ P) = ∅`.

use jqi_relation::{BitSet, Instance};

/// A set of labeled R-rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SemijoinSample {
    pos: Vec<usize>,
    neg: Vec<usize>,
}

impl SemijoinSample {
    /// The empty sample.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a sample from positive and negative R-row indices.
    pub fn from_rows(pos: impl Into<Vec<usize>>, neg: impl Into<Vec<usize>>) -> Self {
        SemijoinSample {
            pos: pos.into(),
            neg: neg.into(),
        }
    }

    /// Adds a positive example.
    pub fn add_positive(&mut self, row: usize) {
        self.pos.push(row);
    }

    /// Adds a negative example.
    pub fn add_negative(&mut self, row: usize) {
        self.neg.push(row);
    }

    /// The positive R-rows.
    pub fn positives(&self) -> &[usize] {
        &self.pos
    }

    /// The negative R-rows.
    pub fn negatives(&self) -> &[usize] {
        &self.neg
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Semantic consistency check: `θ` selects every positive row and no
    /// negative row of the semijoin. `O(|S| · |P| · |θ|)`.
    pub fn admits(&self, instance: &Instance, theta: &BitSet) -> bool {
        let selected =
            |ri: usize| (0..instance.p().len()).any(|pi| instance.selects(theta, ri, pi));
        self.pos.iter().all(|&r| selected(r)) && self.neg.iter().all(|&r| !selected(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_core::paper::example_2_1;
    use jqi_core::predicate_from_names;

    /// §6's example: S⁺ = {t1, t2}, S⁻ = {t3}; θ = {(A1,B2)} is consistent.
    #[test]
    fn section_6_example() {
        let inst = example_2_1();
        let s = SemijoinSample::from_rows(vec![0, 1], vec![2]);
        let theta = predicate_from_names(&inst, &[("A1", "B2")]).unwrap();
        assert!(s.admits(&inst, &theta));
        // R ⋉θ P = {t1, t2, t4}: t1[A1]=0=t3'[B2]? t3'=(2,0,0) B2=0 ✓;
        // semijoin must contain the positives and avoid t3.
        assert_eq!(inst.semijoin(&theta), vec![0, 1, 3]);
    }

    #[test]
    fn inconsistent_theta_rejected() {
        let inst = example_2_1();
        let s = SemijoinSample::from_rows(vec![0], vec![3]);
        // ∅ selects every row, including the negative t4.
        let empty = inst.pairs().bottom();
        assert!(!s.admits(&inst, &empty));
    }

    #[test]
    fn empty_sample_admits_anything() {
        let inst = example_2_1();
        let s = SemijoinSample::new();
        assert!(s.is_empty());
        assert!(s.admits(&inst, &inst.pairs().bottom()));
        assert!(s.admits(&inst, &inst.pairs().omega()));
    }

    #[test]
    fn builders_agree() {
        let mut a = SemijoinSample::new();
        a.add_positive(1);
        a.add_negative(2);
        let b = SemijoinSample::from_rows(vec![1], vec![2]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.positives(), &[1]);
        assert_eq!(a.negatives(), &[2]);
    }
}
