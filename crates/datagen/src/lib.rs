//! Dataset generators for the experimental study (§5).
//!
//! Two families:
//!
//! * [`synthetic`] — the paper's randomly generated datasets, configured by
//!   the quadruple `(|attrs(R)|, |attrs(P)|, l, v)` (§5.2), seeded and
//!   reproducible.
//! * [`tpch`] — a TPC-H-*shaped* generator replacing the benchmark's
//!   `dbgen` tool (§5.1). It reproduces the PK–FK structure behind the
//!   paper's Joins 1–5 and the accidental type-compatible value collisions
//!   the paper highlights ("a value 15 may as well represent a key, a size,
//!   a price, or a quantity"), at laptop scale. See DESIGN.md for the
//!   substitution rationale.
//! * [`stream`] — the constant-memory successor to [`tpch`]'s materialized
//!   tables: a restartable, parallel chunk generator at *real* TPC-H scale
//!   factors (`dbgen` row counts), feeding
//!   `jqi_core::Universe::build_streaming` without ever holding a table in
//!   memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stream;
pub mod synthetic;
pub mod tpch;

pub use stream::{SfConfig, SfJoin, SfStream, SfTable};
pub use synthetic::{ScaledConfig, SyntheticConfig, PAPER_CONFIGS};
pub use tpch::{TpchJoin, TpchScale, TpchTables, TpchWorkload};
