//! The synthetic dataset generator of §5.2.
//!
//! A configuration is a quadruple `(|attrs(R)|, |attrs(P)|, l, v)`: the two
//! arities, the number of rows in each relation, and the size of the value
//! domain `{0, …, v−1}`. Values are drawn uniformly; generation is seeded so
//! that every experiment is reproducible. The paper's six configurations
//! are provided as [`PAPER_CONFIGS`].

use jqi_relation::{Instance, InstanceBuilder, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A generator configuration `(|attrs(R)|, |attrs(P)|, l, v)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyntheticConfig {
    /// Number of attributes of `R`.
    pub attrs_r: usize,
    /// Number of attributes of `P`.
    pub attrs_p: usize,
    /// Number of rows in each relation (`l`).
    pub rows: usize,
    /// Size of the value domain (`v`): values are `0 .. v−1`.
    pub values: u32,
}

/// The six configurations reported in Figure 7 / Table 1, in the paper's
/// order: `(3,3,100,100)`, `(3,3,50,100)`, `(3,4,50,100)`, `(2,5,50,100)`,
/// `(2,4,50,50)`, `(2,4,50,100)`.
pub const PAPER_CONFIGS: [SyntheticConfig; 6] = [
    SyntheticConfig {
        attrs_r: 3,
        attrs_p: 3,
        rows: 100,
        values: 100,
    },
    SyntheticConfig {
        attrs_r: 3,
        attrs_p: 3,
        rows: 50,
        values: 100,
    },
    SyntheticConfig {
        attrs_r: 3,
        attrs_p: 4,
        rows: 50,
        values: 100,
    },
    SyntheticConfig {
        attrs_r: 2,
        attrs_p: 5,
        rows: 50,
        values: 100,
    },
    SyntheticConfig {
        attrs_r: 2,
        attrs_p: 4,
        rows: 50,
        values: 50,
    },
    SyntheticConfig {
        attrs_r: 2,
        attrs_p: 4,
        rows: 50,
        values: 100,
    },
];

impl SyntheticConfig {
    /// Creates a configuration.
    pub fn new(attrs_r: usize, attrs_p: usize, rows: usize, values: u32) -> Self {
        SyntheticConfig {
            attrs_r,
            attrs_p,
            rows,
            values,
        }
    }

    /// Generates an instance with the given seed. Attributes are named
    /// `A1..An` and `B1..Bm` as in the paper.
    pub fn generate(&self, seed: u64) -> Instance {
        assert!(
            self.attrs_r > 0 && self.attrs_p > 0,
            "arities must be positive"
        );
        assert!(self.values > 0, "value domain must be nonempty");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = InstanceBuilder::new();
        let a_names: Vec<String> = (1..=self.attrs_r).map(|i| format!("A{i}")).collect();
        let b_names: Vec<String> = (1..=self.attrs_p).map(|j| format!("B{j}")).collect();
        let a_refs: Vec<&str> = a_names.iter().map(String::as_str).collect();
        let b_refs: Vec<&str> = b_names.iter().map(String::as_str).collect();
        b.relation_r("R", &a_refs);
        b.relation_p("P", &b_refs);
        for _ in 0..self.rows {
            let row: Vec<Value> = (0..self.attrs_r)
                .map(|_| Value::int(rng.gen_range(0..self.values) as i64))
                .collect();
            b.row_r(&row);
        }
        for _ in 0..self.rows {
            let row: Vec<Value> = (0..self.attrs_p)
                .map(|_| Value::int(rng.gen_range(0..self.values) as i64))
                .collect();
            b.row_p(&row);
        }
        b.build().expect("synthetic configuration is well-formed")
    }

    /// `|D| = l²`, the Cartesian-product size of generated instances.
    pub fn product_size(&self) -> u64 {
        (self.rows as u64) * (self.rows as u64)
    }
}

/// A duplicate-heavy scaled configuration for the `scaling` benchmark: the
/// relations have `rows_r` / `rows_p` rows drawn (with repetition) from
/// pools of at most `distinct_r` / `distinct_p` pre-generated rows.
///
/// This reproduces the regime the paper's tractability argument rests on —
/// a Cartesian product of up to `rows_r · rows_p` tuples (10⁷–10⁸ at the
/// top of the sweep) that collapses into at most `distinct_r · distinct_p`
/// profile pairs — so `Universe::build`'s profile deduplication is
/// measurable against the row-pair reference loop at sizes where the
/// latter is still feasible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScaledConfig {
    /// Number of attributes of `R`.
    pub attrs_r: usize,
    /// Number of attributes of `P`.
    pub attrs_p: usize,
    /// Number of rows of `R` (duplicates included).
    pub rows_r: usize,
    /// Number of rows of `P` (duplicates included).
    pub rows_p: usize,
    /// Size of the distinct-row pool for `R`.
    pub distinct_r: usize,
    /// Size of the distinct-row pool for `P`.
    pub distinct_p: usize,
    /// Size of the value domain (`v`): values are `0 .. v−1`.
    pub values: u32,
}

impl ScaledConfig {
    /// Creates a scaled configuration.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        attrs_r: usize,
        attrs_p: usize,
        rows_r: usize,
        rows_p: usize,
        distinct_r: usize,
        distinct_p: usize,
        values: u32,
    ) -> Self {
        ScaledConfig {
            attrs_r,
            attrs_p,
            rows_r,
            rows_p,
            distinct_r,
            distinct_p,
            values,
        }
    }

    /// Generates an instance with the given seed: pools first, then rows
    /// sampled uniformly from the pools.
    pub fn generate(&self, seed: u64) -> Instance {
        assert!(
            self.attrs_r > 0 && self.attrs_p > 0,
            "arities must be positive"
        );
        assert!(
            self.distinct_r > 0 && self.distinct_p > 0,
            "distinct pools must be nonempty"
        );
        assert!(self.values > 0, "value domain must be nonempty");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pool = |arity: usize, distinct: usize| -> Vec<Vec<Value>> {
            (0..distinct)
                .map(|_| {
                    (0..arity)
                        .map(|_| Value::int(rng.gen_range(0..self.values) as i64))
                        .collect()
                })
                .collect()
        };
        let r_pool = pool(self.attrs_r, self.distinct_r);
        let p_pool = pool(self.attrs_p, self.distinct_p);
        let mut b = InstanceBuilder::new();
        let a_names: Vec<String> = (1..=self.attrs_r).map(|i| format!("A{i}")).collect();
        let b_names: Vec<String> = (1..=self.attrs_p).map(|j| format!("B{j}")).collect();
        let a_refs: Vec<&str> = a_names.iter().map(String::as_str).collect();
        let b_refs: Vec<&str> = b_names.iter().map(String::as_str).collect();
        b.relation_r("R", &a_refs);
        b.relation_p("P", &b_refs);
        for _ in 0..self.rows_r {
            b.row_r(&r_pool[rng.gen_range(0..self.distinct_r as u32) as usize]);
        }
        for _ in 0..self.rows_p {
            b.row_p(&p_pool[rng.gen_range(0..self.distinct_p as u32) as usize]);
        }
        b.build().expect("scaled configuration is well-formed")
    }

    /// `|D| = rows_R · rows_P`, the Cartesian-product size.
    pub fn product_size(&self) -> u64 {
        self.rows_r as u64 * self.rows_p as u64
    }

    /// Upper bound on the number of distinct profile pairs.
    pub fn max_profile_pairs(&self) -> u64 {
        self.distinct_r as u64 * self.distinct_p as u64
    }
}

impl std::fmt::Display for ScaledConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({},{},{}x{},{}·{} distinct,{})",
            self.attrs_r,
            self.attrs_p,
            self.rows_r,
            self.rows_p,
            self.distinct_r,
            self.distinct_p,
            self.values
        )
    }
}

impl std::fmt::Display for SyntheticConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({},{},{},{})",
            self.attrs_r, self.attrs_p, self.rows, self.values
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_core::universe::Universe;

    #[test]
    fn shapes_match_configuration() {
        let cfg = SyntheticConfig::new(3, 4, 50, 100);
        let inst = cfg.generate(7);
        assert_eq!(inst.r().len(), 50);
        assert_eq!(inst.p().len(), 50);
        assert_eq!(inst.r().schema().arity(), 3);
        assert_eq!(inst.p().schema().arity(), 4);
        assert_eq!(inst.product_size(), cfg.product_size());
        assert_eq!(inst.pairs().len(), 12);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = PAPER_CONFIGS[1];
        let a = cfg.generate(42);
        let b = cfg.generate(42);
        for (ra, rb) in a.r().rows().iter().zip(b.r().rows()) {
            assert_eq!(ra.resolve(a.interner()), rb.resolve(b.interner()));
        }
        // Different seeds give different data (overwhelmingly likely).
        let c = cfg.generate(43);
        let same = a
            .r()
            .rows()
            .iter()
            .zip(c.r().rows())
            .all(|(ra, rc)| ra.resolve(a.interner()) == rc.resolve(c.interner()));
        assert!(!same);
    }

    #[test]
    fn values_respect_domain() {
        let cfg = SyntheticConfig::new(2, 2, 30, 5);
        let inst = cfg.generate(1);
        for row in inst.r().rows().iter().chain(inst.p().rows()) {
            for v in row.resolve(inst.interner()) {
                let i = v.as_int().expect("synthetic values are ints");
                assert!((0..5).contains(&i));
            }
        }
    }

    #[test]
    fn paper_configs_have_small_join_predicates() {
        // Sanity: signature sizes stay within 0..=|attrs(R)|·|attrs(P)| and
        // the join ratio is within the ballpark reported in Table 1 (1.3–1.7
        // for the paper's configs); we allow a loose band since the seed
        // differs.
        for cfg in PAPER_CONFIGS {
            let u = Universe::build(cfg.generate(5));
            let jr = jqi_core::lattice::join_ratio(&u);
            assert!(
                (0.5..3.0).contains(&jr),
                "join ratio {jr} out of band for {cfg}"
            );
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(PAPER_CONFIGS[0].to_string(), "(3,3,100,100)");
    }

    #[test]
    #[should_panic(expected = "arities must be positive")]
    fn zero_arity_rejected() {
        SyntheticConfig::new(0, 2, 5, 5).generate(0);
    }

    #[test]
    fn scaled_config_bounds_distinct_profiles() {
        let cfg = ScaledConfig::new(3, 3, 500, 400, 8, 6, 12);
        let inst = cfg.generate(42);
        assert_eq!(inst.r().len(), 500);
        assert_eq!(inst.p().len(), 400);
        assert_eq!(inst.product_size(), cfg.product_size());
        let u = Universe::build(inst);
        assert!(u.distinct_r_profiles() <= 8);
        assert!(u.distinct_p_profiles() <= 6);
        assert_eq!(u.total_tuples(), cfg.product_size());
        assert!(u.num_classes() as u64 <= cfg.max_profile_pairs());
    }

    #[test]
    fn scaled_generation_is_deterministic() {
        let cfg = ScaledConfig::new(2, 2, 50, 50, 4, 4, 9);
        let a = cfg.generate(7);
        let b = cfg.generate(7);
        for (ra, rb) in a.r().rows().iter().zip(b.r().rows()) {
            assert_eq!(ra.resolve(a.interner()), rb.resolve(b.interner()));
        }
    }
}
