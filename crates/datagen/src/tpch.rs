//! A TPC-H-shaped data generator (substitute for `dbgen`, §5.1).
//!
//! The paper evaluates its strategies on TPC-H with five goal join
//! predicates that correspond to key–foreign-key relationships:
//!
//! 1. `Part[Partkey] = Partsupp[Partkey]`
//! 2. `Supplier[Suppkey] = Partsupp[Suppkey]`
//! 3. `Customer[Custkey] = Orders[Custkey]`
//! 4. `Orders[Orderkey] = Lineitem[Orderkey]`
//! 5. `Partsupp[Partkey] = Lineitem[Partkey] ∧ Partsupp[Suppkey] = Lineitem[Suppkey]`
//!
//! The strategies never see these constraints — they reason purely over the
//! value-equality patterns of the data. What makes the benchmark hard is
//! that *non-key* attributes collide with keys ("a value 15 … may as well
//! represent a key, a size, a price, or a quantity"). This generator
//! reproduces exactly that: six tables with the TPC-H PK–FK wiring and
//! deliberately small, overlapping integer domains for the non-key columns,
//! at laptop scale. Absolute cardinalities differ from `dbgen`'s (the
//! algorithms operate on T-equivalence classes, whose count depends on the
//! equality *pattern*, not on raw row counts); the shape of the results —
//! which strategy needs fewest interactions per join — is preserved.

use jqi_core::predicate_from_names;
use jqi_relation::{BitSet, Instance, InstanceBuilder};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Relative dataset scale, standing in for the paper's TPC-H scale factors
/// (the paper reports SF = 1 and SF = 100000; we keep the ratio of product
/// sizes meaningful while staying laptop-sized).
///
/// The scale is a continuous multiplier on the base row counts, so sweeps
/// can probe any point between (or beyond) the named presets:
///
/// ```
/// use jqi_datagen::tpch::TpchScale;
/// assert_eq!(TpchScale::Small, TpchScale::new(1.0));
/// assert!(TpchScale::new(2.5).sf() > TpchScale::Small.sf());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct TpchScale {
    sf: f64,
}

#[allow(non_upper_case_globals)] // presets keep their historical variant names
impl TpchScale {
    /// Mirrors the SF = 1 column of Figure 6.
    pub const Small: TpchScale = TpchScale { sf: 1.0 };
    /// Mirrors the SF = 100000 column of Figure 6 (denser key reuse, larger
    /// product).
    pub const Large: TpchScale = TpchScale { sf: 6.0 };
    /// The `scaling` benchmark's ≥10⁷-product-tuple workload (Join 4's
    /// Orders × Lineitem product exceeds 10⁷). Not part of the paper's
    /// figures ([`TpchScale::ALL`] stays the paper's two scales).
    pub const Huge: TpchScale = TpchScale { sf: 100.0 };

    /// Both of the paper's scales, in the paper's order.
    pub const ALL: [TpchScale; 2] = [TpchScale::Small, TpchScale::Large];

    /// An arbitrary continuous scale. Values below ~`1.0` shrink the base
    /// tables (row counts are clamped to at least one row per table).
    pub fn new(sf: f64) -> Self {
        assert!(sf.is_finite() && sf > 0.0, "scale factor must be positive");
        TpchScale { sf }
    }

    /// The continuous scale factor.
    pub fn sf(self) -> f64 {
        self.sf
    }

    /// Scales a base row count, keeping every table non-empty.
    fn rows(self, base: usize) -> usize {
        ((base as f64 * self.sf).round() as usize).max(1)
    }

    /// Display name used in reports.
    pub fn name(self) -> String {
        if self == TpchScale::Small {
            "SF=small".to_string()
        } else if self == TpchScale::Large {
            "SF=large".to_string()
        } else if self == TpchScale::Huge {
            "SF=huge".to_string()
        } else {
            format!("SF={}", self.sf)
        }
    }
}

impl std::fmt::Display for TpchScale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// The five goal joins of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpchJoin {
    /// `Part[Partkey] = Partsupp[Partkey]`.
    Join1,
    /// `Supplier[Suppkey] = Partsupp[Suppkey]`.
    Join2,
    /// `Customer[Custkey] = Orders[Custkey]`.
    Join3,
    /// `Orders[Orderkey] = Lineitem[Orderkey]`.
    Join4,
    /// `Partsupp[Partkey,Suppkey] = Lineitem[Partkey,Suppkey]` (size 2).
    Join5,
}

impl TpchJoin {
    /// All five joins, in the paper's order.
    pub const ALL: [TpchJoin; 5] = [
        TpchJoin::Join1,
        TpchJoin::Join2,
        TpchJoin::Join3,
        TpchJoin::Join4,
        TpchJoin::Join5,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            TpchJoin::Join1 => "Join 1",
            TpchJoin::Join2 => "Join 2",
            TpchJoin::Join3 => "Join 3",
            TpchJoin::Join4 => "Join 4",
            TpchJoin::Join5 => "Join 5",
        }
    }

    /// The size `|θG|` of the goal predicate (1 for Joins 1–4, 2 for Join 5).
    pub fn goal_size(self) -> usize {
        match self {
            TpchJoin::Join5 => 2,
            _ => 1,
        }
    }
}

impl std::fmt::Display for TpchJoin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One goal-join workload: the two-relation instance plus the goal
/// predicate the simulated user has in mind.
#[derive(Debug, Clone)]
pub struct TpchWorkload {
    /// Which of the five joins this is.
    pub join: TpchJoin,
    /// The two-relation instance (R = the first relation of the join).
    pub instance: Instance,
    /// The goal predicate θG over the instance's pair space.
    pub goal: BitSet,
}

/// Plain row structs for the six generated tables. Keys are dense
/// `0..n`; foreign keys reference existing rows; non-key columns draw from
/// small domains that overlap the key ranges.
#[derive(Debug, Clone)]
pub struct TpchTables {
    scale: TpchScale,
    /// `(partkey, size, container, mfg)`.
    pub parts: Vec<(i64, i64, i64, i64)>,
    /// `(suppkey, nation, acctbal)`.
    pub suppliers: Vec<(i64, i64, i64)>,
    /// `(partkey, suppkey, availqty, supplycost)`.
    pub partsupps: Vec<(i64, i64, i64, i64)>,
    /// `(custkey, nation, acctbal)`.
    pub customers: Vec<(i64, i64, i64)>,
    /// `(orderkey, custkey, shippriority, status)`.
    pub orders: Vec<(i64, i64, i64, i64)>,
    /// `(orderkey, partkey, suppkey, linenumber, quantity)`.
    pub lineitems: Vec<(i64, i64, i64, i64, i64)>,
}

impl TpchTables {
    /// Generates the six tables at `scale` with the given seed.
    pub fn generate(scale: TpchScale, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n_part = scale.rows(20);
        let n_supp = scale.rows(8);
        let n_cust = scale.rows(12);
        let n_ord = scale.rows(25);

        let parts: Vec<(i64, i64, i64, i64)> = (0..n_part)
            .map(|key| {
                (
                    key as i64,
                    rng.gen_range(1..=50),
                    rng.gen_range(0..40),
                    rng.gen_range(1..=5),
                )
            })
            .collect();
        let suppliers: Vec<(i64, i64, i64)> = (0..n_supp)
            .map(|key| (key as i64, rng.gen_range(0..25), rng.gen_range(0..100)))
            .collect();
        // Each part is supplied by two distinct suppliers, as in TPC-H's
        // 1:4 partsupp fanout (reduced to 1:2 at this scale).
        let mut partsupps: Vec<(i64, i64, i64, i64)> = Vec::with_capacity(2 * n_part);
        for &(pk, ..) in &parts {
            let s1 = rng.gen_range(0..n_supp) as i64;
            // At sub-unit scales a table can shrink to a single supplier, in
            // which case the second (distinct) partsupp entry is dropped.
            let s2 = (n_supp > 1)
                .then(|| (s1 + 1 + rng.gen_range(0..n_supp as i64 - 1)) % n_supp as i64);
            for sk in std::iter::once(s1).chain(s2) {
                partsupps.push((pk, sk, rng.gen_range(0..=100), rng.gen_range(0..=100)));
            }
        }
        let customers: Vec<(i64, i64, i64)> = (0..n_cust)
            .map(|key| (key as i64, rng.gen_range(0..25), rng.gen_range(0..100)))
            .collect();
        let orders: Vec<(i64, i64, i64, i64)> = (0..n_ord)
            .map(|key| {
                (
                    key as i64,
                    rng.gen_range(0..n_cust) as i64,
                    rng.gen_range(0..=1),
                    rng.gen_range(0..=2),
                )
            })
            .collect();
        // Each order has 1–3 lineitems, each referencing a partsupp pair so
        // that Join 5 (the composite key) has matches.
        let mut lineitems: Vec<(i64, i64, i64, i64, i64)> = Vec::new();
        for &(ok, ..) in &orders {
            let n_lines = rng.gen_range(1..=3);
            for line in 1..=n_lines {
                let &(pk, sk, ..) = &partsupps[rng.gen_range(0..partsupps.len())];
                lineitems.push((ok, pk, sk, line, rng.gen_range(1..=50)));
            }
        }
        TpchTables {
            scale,
            parts,
            suppliers,
            partsupps,
            customers,
            orders,
            lineitems,
        }
    }

    /// The scale the tables were generated at.
    pub fn scale(&self) -> TpchScale {
        self.scale
    }

    /// Builds the two-relation instance and goal predicate for `join`.
    pub fn workload(&self, join: TpchJoin) -> TpchWorkload {
        let mut b = InstanceBuilder::new();
        let goal_pairs: Vec<(&str, &str)> = match join {
            TpchJoin::Join1 => {
                b.relation_r("Part", &["P_PartKey", "P_Size", "P_Container", "P_Mfg"]);
                b.relation_p(
                    "Partsupp",
                    &["PS_PartKey", "PS_SuppKey", "PS_AvailQty", "PS_SupplyCost"],
                );
                for &(k, s, c, m) in &self.parts {
                    b.row_r_ints(&[k, s, c, m]);
                }
                for &(pk, sk, q, c) in &self.partsupps {
                    b.row_p_ints(&[pk, sk, q, c]);
                }
                vec![("P_PartKey", "PS_PartKey")]
            }
            TpchJoin::Join2 => {
                b.relation_r("Supplier", &["S_SuppKey", "S_Nation", "S_AcctBal"]);
                b.relation_p(
                    "Partsupp",
                    &["PS_PartKey", "PS_SuppKey", "PS_AvailQty", "PS_SupplyCost"],
                );
                for &(k, n, a) in &self.suppliers {
                    b.row_r_ints(&[k, n, a]);
                }
                for &(pk, sk, q, c) in &self.partsupps {
                    b.row_p_ints(&[pk, sk, q, c]);
                }
                vec![("S_SuppKey", "PS_SuppKey")]
            }
            TpchJoin::Join3 => {
                b.relation_r("Customer", &["C_CustKey", "C_Nation", "C_AcctBal"]);
                b.relation_p(
                    "Orders",
                    &["O_OrderKey", "O_CustKey", "O_ShipPriority", "O_Status"],
                );
                for &(k, n, a) in &self.customers {
                    b.row_r_ints(&[k, n, a]);
                }
                for &(ok, ck, sp, st) in &self.orders {
                    b.row_p_ints(&[ok, ck, sp, st]);
                }
                vec![("C_CustKey", "O_CustKey")]
            }
            TpchJoin::Join4 => {
                b.relation_r(
                    "Orders",
                    &["O_OrderKey", "O_CustKey", "O_ShipPriority", "O_Status"],
                );
                b.relation_p(
                    "Lineitem",
                    &[
                        "L_OrderKey",
                        "L_PartKey",
                        "L_SuppKey",
                        "L_LineNumber",
                        "L_Quantity",
                    ],
                );
                for &(ok, ck, sp, st) in &self.orders {
                    b.row_r_ints(&[ok, ck, sp, st]);
                }
                for &(ok, pk, sk, ln, q) in &self.lineitems {
                    b.row_p_ints(&[ok, pk, sk, ln, q]);
                }
                vec![("O_OrderKey", "L_OrderKey")]
            }
            TpchJoin::Join5 => {
                b.relation_r(
                    "Partsupp",
                    &["PS_PartKey", "PS_SuppKey", "PS_AvailQty", "PS_SupplyCost"],
                );
                b.relation_p(
                    "Lineitem",
                    &[
                        "L_OrderKey",
                        "L_PartKey",
                        "L_SuppKey",
                        "L_LineNumber",
                        "L_Quantity",
                    ],
                );
                for &(pk, sk, q, c) in &self.partsupps {
                    b.row_r_ints(&[pk, sk, q, c]);
                }
                for &(ok, pk, sk, ln, q) in &self.lineitems {
                    b.row_p_ints(&[ok, pk, sk, ln, q]);
                }
                vec![("PS_PartKey", "L_PartKey"), ("PS_SuppKey", "L_SuppKey")]
            }
        };
        let instance = b.build().expect("TPC-H workload instance is well-formed");
        let goal = predicate_from_names(&instance, &goal_pairs).expect("goal attributes exist");
        TpchWorkload {
            join,
            instance,
            goal,
        }
    }

    /// All five workloads at this scale.
    pub fn workloads(&self) -> Vec<TpchWorkload> {
        TpchJoin::ALL.iter().map(|&j| self.workload(j)).collect()
    }
}

/// Convenience: generate tables and the workload for one join directly.
pub fn workload(scale: TpchScale, join: TpchJoin, seed: u64) -> TpchWorkload {
    TpchTables::generate(scale, seed).workload(join)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_core::engine::{run_inference, PredicateOracle};
    use jqi_core::strategy::TopDown;
    use jqi_core::universe::Universe;

    #[test]
    fn tables_have_expected_shapes() {
        let t = TpchTables::generate(TpchScale::Small, 1);
        assert_eq!(t.parts.len(), 20);
        assert_eq!(t.suppliers.len(), 8);
        assert_eq!(t.partsupps.len(), 40);
        assert_eq!(t.customers.len(), 12);
        assert_eq!(t.orders.len(), 25);
        assert!(!t.lineitems.is_empty());
        let large = TpchTables::generate(TpchScale::Large, 1);
        assert_eq!(large.parts.len(), 120);
    }

    #[test]
    fn foreign_keys_reference_existing_rows() {
        let t = TpchTables::generate(TpchScale::Small, 2);
        let n_part = t.parts.len() as i64;
        let n_supp = t.suppliers.len() as i64;
        let n_cust = t.customers.len() as i64;
        let n_ord = t.orders.len() as i64;
        for &(pk, sk, ..) in &t.partsupps {
            assert!((0..n_part).contains(&pk));
            assert!((0..n_supp).contains(&sk));
        }
        for &(_, ck, ..) in &t.orders {
            assert!((0..n_cust).contains(&ck));
        }
        for &(ok, pk, sk, ..) in &t.lineitems {
            assert!((0..n_ord).contains(&ok));
            assert!((0..n_part).contains(&pk));
            assert!((0..n_supp).contains(&sk));
        }
    }

    #[test]
    fn partsupp_suppliers_are_distinct_per_part() {
        let t = TpchTables::generate(TpchScale::Small, 3);
        for pair in t.partsupps.chunks(2) {
            assert_eq!(pair[0].0, pair[1].0, "same part");
            assert_ne!(pair[0].1, pair[1].1, "distinct suppliers");
        }
    }

    #[test]
    fn goal_joins_are_nonempty() {
        let t = TpchTables::generate(TpchScale::Small, 4);
        for w in t.workloads() {
            let selected = w.instance.equijoin(&w.goal);
            assert!(!selected.is_empty(), "{} selects nothing", w.join);
            assert_eq!(w.goal.len(), w.join.goal_size());
        }
    }

    #[test]
    fn keys_collide_with_non_key_attributes() {
        // The benchmark's difficulty: some non-key column shares values with
        // the key columns, producing signatures with extra accidental pairs.
        let w = workload(TpchScale::Small, TpchJoin::Join1, 5);
        let u = Universe::build(w.instance.clone());
        let has_extra = u
            .sigs()
            .iter()
            .any(|sig| sig.len() >= 2 && w.goal.is_subset(sig));
        assert!(
            has_extra,
            "expected at least one tuple matching the key AND an accidental pair"
        );
    }

    #[test]
    fn inference_recovers_each_goal_join() {
        let t = TpchTables::generate(TpchScale::Small, 6);
        for w in t.workloads() {
            let u = Universe::build(w.instance.clone());
            let mut oracle = PredicateOracle::new(w.goal.clone());
            let run = run_inference(&u, &mut TopDown::new(), &mut oracle).unwrap();
            assert_eq!(
                u.instance().equijoin(&run.predicate),
                u.instance().equijoin(&w.goal),
                "TD failed to recover {}",
                w.join
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TpchTables::generate(TpchScale::Small, 10);
        let b = TpchTables::generate(TpchScale::Small, 10);
        assert_eq!(a.lineitems, b.lineitems);
        assert_eq!(a.partsupps, b.partsupps);
    }

    #[test]
    fn names_and_sizes() {
        assert_eq!(TpchJoin::Join5.to_string(), "Join 5");
        assert_eq!(TpchJoin::Join5.goal_size(), 2);
        assert_eq!(TpchJoin::Join1.goal_size(), 1);
        assert_eq!(TpchScale::Small.to_string(), "SF=small");
        assert_eq!(TpchScale::ALL.len(), 2);
        assert_eq!(TpchScale::Huge.to_string(), "SF=huge");
    }

    #[test]
    fn continuous_scale_interpolates_and_clamps() {
        let half = TpchTables::generate(TpchScale::new(0.5), 1);
        assert_eq!(half.parts.len(), 10);
        assert_eq!(half.suppliers.len(), 4);
        let tiny = TpchTables::generate(TpchScale::new(0.001), 1);
        assert!(!tiny.parts.is_empty(), "row counts clamp to ≥ 1");
        assert!(!tiny.orders.is_empty());
        assert_eq!(TpchScale::new(2.5).name(), "SF=2.5");
        assert_eq!(TpchScale::new(1.0), TpchScale::Small);
        assert!(TpchScale::Small < TpchScale::Large);
    }

    #[test]
    fn huge_scale_reaches_ten_million_product_tuples() {
        // Join 4 (Orders × Lineitem) is the scaling sweep's largest TPC-H
        // point; table generation alone must stay cheap.
        let t = TpchTables::generate(TpchScale::Huge, 1);
        let product = t.orders.len() as u64 * t.lineitems.len() as u64;
        assert!(product >= 10_000_000, "Join 4 product {product} below 10^7");
    }
}
