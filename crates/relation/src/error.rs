//! Error types for the relational substrate.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RelationError>;

/// Errors raised while building or querying relations and instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A row was inserted whose arity does not match the schema.
    ArityMismatch {
        /// Relation whose schema was violated.
        relation: String,
        /// Number of attributes the schema declares.
        expected: usize,
        /// Number of values the offending row carried.
        got: usize,
    },
    /// Two attributes of the same relation share a name.
    DuplicateAttribute {
        /// Relation in which the duplicate occurs.
        relation: String,
        /// The duplicated attribute name.
        attribute: String,
    },
    /// An attribute name was not found in a schema.
    UnknownAttribute {
        /// Relation that was searched.
        relation: String,
        /// The attribute that could not be resolved.
        attribute: String,
    },
    /// An instance was built without one of its two relations.
    MissingRelation {
        /// `"R"` or `"P"`.
        which: &'static str,
    },
    /// The paper requires `attrs(R)` and `attrs(P)` to be disjoint.
    OverlappingAttributes {
        /// The attribute name present in both schemas.
        attribute: String,
    },
    /// A CSV document could not be parsed.
    Csv {
        /// 1-based line number of the malformed record.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A tuple index was out of bounds for its relation.
    RowOutOfBounds {
        /// Relation that was indexed.
        relation: String,
        /// The offending row index.
        index: usize,
        /// Number of rows actually present.
        len: usize,
    },
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::ArityMismatch { relation, expected, got } => write!(
                f,
                "relation `{relation}`: row has {got} values but schema has {expected} attributes"
            ),
            RelationError::DuplicateAttribute { relation, attribute } => {
                write!(f, "relation `{relation}`: duplicate attribute `{attribute}`")
            }
            RelationError::UnknownAttribute { relation, attribute } => {
                write!(f, "relation `{relation}`: unknown attribute `{attribute}`")
            }
            RelationError::MissingRelation { which } => {
                write!(f, "instance is missing relation {which}")
            }
            RelationError::OverlappingAttributes { attribute } => write!(
                f,
                "attribute `{attribute}` appears in both relations; the paper assumes disjoint attribute sets"
            ),
            RelationError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
            RelationError::RowOutOfBounds { relation, index, len } => {
                write!(f, "relation `{relation}`: row index {index} out of bounds (len {len})")
            }
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelationError::ArityMismatch {
            relation: "R".into(),
            expected: 3,
            got: 2,
        };
        let s = e.to_string();
        assert!(s.contains('R') && s.contains('3') && s.contains('2'));
    }

    #[test]
    fn errors_are_comparable() {
        let a = RelationError::MissingRelation { which: "R" };
        let b = RelationError::MissingRelation { which: "R" };
        assert_eq!(a, b);
        let c = RelationError::MissingRelation { which: "P" };
        assert_ne!(a, c);
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(RelationError::MissingRelation { which: "P" });
        assert!(e.to_string().contains('P'));
    }
}
