//! Tuples of interned symbols.

use crate::interner::{Interner, Symbol};
use crate::value::Value;
use std::fmt;

/// A tuple: a fixed-arity sequence of interned value symbols.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    values: Box<[Symbol]>,
}

impl Tuple {
    /// Builds a tuple from raw symbols.
    pub fn new(values: impl Into<Box<[Symbol]>>) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// Builds a tuple by interning `values`.
    pub fn intern(interner: &Interner, values: &[Value]) -> Self {
        Tuple {
            values: values.iter().map(|v| interner.intern(v)).collect(),
        }
    }

    /// The arity of the tuple.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The symbol at position `i`. Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize) -> Symbol {
        self.values[i]
    }

    /// All symbols.
    #[inline]
    pub fn symbols(&self) -> &[Symbol] {
        &self.values
    }

    /// Resolves the tuple back to values.
    pub fn resolve(&self, interner: &Interner) -> Vec<Value> {
        self.values.iter().map(|&s| interner.resolve(s)).collect()
    }

    /// A displayable view of the tuple using `interner` to resolve symbols.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> DisplayTuple<'a> {
        DisplayTuple {
            tuple: self,
            interner,
        }
    }
}

/// Helper implementing [`fmt::Display`] for a tuple plus its interner.
pub struct DisplayTuple<'a> {
    tuple: &'a Tuple,
    interner: &'a Interner,
}

impl fmt::Display for DisplayTuple<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, &s) in self.tuple.symbols().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.interner.resolve(s))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_and_resolve() {
        let it = Interner::new();
        let t = Tuple::intern(&it, &[Value::str("Paris"), Value::int(3)]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.resolve(&it), vec![Value::str("Paris"), Value::int(3)]);
    }

    #[test]
    fn equal_values_share_symbols() {
        let it = Interner::new();
        let t1 = Tuple::intern(&it, &[Value::str("NYC")]);
        let t2 = Tuple::intern(&it, &[Value::str("NYC")]);
        assert_eq!(t1.get(0), t2.get(0));
        assert_eq!(t1, t2);
    }

    #[test]
    fn display() {
        let it = Interner::new();
        let t = Tuple::intern(&it, &[Value::str("Lille"), Value::str("AF")]);
        assert_eq!(t.display(&it).to_string(), "(Lille, AF)");
    }

    #[test]
    fn zero_arity() {
        let it = Interner::new();
        let t = Tuple::intern(&it, &[]);
        assert_eq!(t.arity(), 0);
        assert_eq!(t.display(&it).to_string(), "()");
    }
}
