//! Attribute values.
//!
//! The inference algorithms only ever compare values for equality, so the
//! value model is deliberately small: 64-bit integers and strings. Equality
//! is *typed* — `Value::Int(15)` and `Value::str("15")` are distinct — which
//! mirrors the paper's remark that "a value 15 may as well represent a key, a
//! size, a price, or a quantity": collisions happen within a type, exactly as
//! in TPC-H columns of compatible types.

use std::fmt;

/// A single attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer value (keys, sizes, quantities, prices in cents, …).
    Int(i64),
    /// A string value (names, cities, airline codes, …).
    Str(Box<str>),
}

impl Value {
    /// Builds a string value. Shorthand for `Value::Str(s.into())`.
    pub fn str(s: impl Into<Box<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns the integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }

    /// Parses a CSV cell: integers become [`Value::Int`], everything else
    /// stays a string. This is the convention used by [`crate::csv`].
    pub fn parse_cell(cell: &str) -> Value {
        match cell.parse::<i64>() {
            Ok(i) => Value::Int(i),
            Err(_) => Value::str(cell),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s.into_boxed_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_equality() {
        assert_ne!(Value::int(15), Value::str("15"));
        assert_eq!(Value::int(15), Value::Int(15));
        assert_eq!(Value::str("AF"), Value::from("AF"));
    }

    #[test]
    fn parse_cell_prefers_integers() {
        assert_eq!(Value::parse_cell("42"), Value::Int(42));
        assert_eq!(Value::parse_cell("-7"), Value::Int(-7));
        assert_eq!(Value::parse_cell("4.2"), Value::str("4.2"));
        assert_eq!(Value::parse_cell("NYC"), Value::str("NYC"));
        assert_eq!(Value::parse_cell(""), Value::str(""));
    }

    #[test]
    fn display_round_trip_for_ints() {
        let v = Value::int(-123);
        assert_eq!(Value::parse_cell(&v.to_string()), v);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::int(3).as_int(), Some(3));
        assert_eq!(Value::int(3).as_str(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![
            Value::str("b"),
            Value::int(2),
            Value::str("a"),
            Value::int(1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::int(1),
                Value::int(2),
                Value::str("a"),
                Value::str("b")
            ]
        );
    }
}
