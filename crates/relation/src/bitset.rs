//! Fixed-capacity bit sets.
//!
//! Join predicates `θ ⊆ Ω = attrs(R) × attrs(P)` are represented as bit sets
//! over the `|attrs(R)| · |attrs(P)|` attribute pairs. The inference
//! algorithms reduce to three bit-set operations (Lemmas 3.3 and 3.4 of the
//! paper): subset testing, intersection, and equality — all implemented here
//! as word-wise loops over a `Box<[u64]>`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Bits per backing word.
pub const WORD_BITS: usize = 64;

/// A fixed-capacity set of bit positions `0..nbits`.
pub struct BitSet {
    nbits: usize,
    words: Box<[u64]>,
}

impl Clone for BitSet {
    fn clone(&self) -> Self {
        BitSet {
            nbits: self.nbits,
            words: self.words.clone(),
        }
    }

    /// Reuses `self`'s backing buffer when the word counts match — the
    /// lookahead speculation pool copies Ω-width predicates once per visited
    /// node, and a fresh allocation per copy would dominate.
    fn clone_from(&mut self, source: &Self) {
        self.nbits = source.nbits;
        if self.words.len() == source.words.len() {
            self.words.copy_from_slice(&source.words);
        } else {
            self.words = source.words.clone();
        }
    }
}

/// Number of `u64` words backing a set over `nbits` positions.
///
/// Shared with bulk signature computation in `jqi_core::universe`, which
/// builds word buffers directly before wrapping them via
/// [`BitSet::from_words`].
#[inline]
pub fn word_count(nbits: usize) -> usize {
    nbits.div_ceil(WORD_BITS)
}

/// ORs an `mask`-encoded bit pattern into `dst` at bit offset `base`.
///
/// `mask` is a little-endian word buffer whose meaningful bits occupy
/// positions `0..m` for some `m`; bits `base..base+m` of `dst` receive them.
/// The caller guarantees `base + m` fits in `dst` and that bits of `mask` at
/// or above `m` are zero. This is the bulk-signature primitive of
/// `jqi_core::universe`: each P-column mask is placed at its R-column's
/// offset `i·m` in one shifted word loop, for any arity (no 64-column
/// limit).
#[inline]
pub fn or_shifted(dst: &mut [u64], mask: &[u64], base: usize) {
    let wi = base / WORD_BITS;
    let off = base % WORD_BITS;
    if off == 0 {
        for (k, &w) in mask.iter().enumerate() {
            if w != 0 {
                dst[wi + k] |= w;
            }
        }
    } else {
        for (k, &w) in mask.iter().enumerate() {
            if w == 0 {
                continue;
            }
            dst[wi + k] |= w << off;
            let spill = w >> (WORD_BITS - off);
            if spill != 0 {
                dst[wi + k + 1] |= spill;
            }
        }
    }
}

/// Popcount of the intersection of two word slices (`|a ∩ b|`), without
/// materializing it. Slices may have different lengths; missing words count
/// as zero. This is the mask-algebra primitive behind popcount-speed
/// entropy: `jqi_core`'s class-index masks intersect the precomputed
/// containment closure with the live informative mask and only ever need
/// the cardinality.
#[inline]
pub fn count_and(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x & y).count_ones() as usize)
        .sum()
}

/// The position of the `n`-th (0-based) set bit of a word slice, in
/// ascending order, or `None` if fewer than `n + 1` bits are set.
///
/// Word-skipping select: whole words are stepped over by popcount, then the
/// target word is scanned bit by bit. Used by the random strategy to draw a
/// uniform informative class from the class-index mask without
/// materializing a candidate vector.
#[inline]
pub fn nth_set_bit(words: &[u64], mut n: usize) -> Option<usize> {
    for (wi, &w) in words.iter().enumerate() {
        let ones = w.count_ones() as usize;
        if n < ones {
            let mut w = w;
            for _ in 0..n {
                w &= w - 1; // clear the lowest set bit
            }
            return Some(wi * WORD_BITS + w.trailing_zeros() as usize);
        }
        n -= ones;
    }
    None
}

/// A cheap, deterministic 64-bit hash over a word slice (murmur-style
/// finalizer). Used to bucket signatures during class construction; callers
/// must re-check full equality on collision.
#[inline]
pub fn hash_words(words: &[u64]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
    }
    h
}

impl BitSet {
    /// Creates the empty set over a universe of `nbits` positions.
    pub fn empty(nbits: usize) -> Self {
        BitSet {
            nbits,
            words: vec![0u64; word_count(nbits)].into_boxed_slice(),
        }
    }

    /// Creates the full set `{0, …, nbits-1}`.
    pub fn full(nbits: usize) -> Self {
        let mut s = Self::empty(nbits);
        for w in s.words.iter_mut() {
            *w = u64::MAX;
        }
        s.clear_excess();
        s
    }

    /// Builds a set from an iterator of positions.
    pub fn from_iter(nbits: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::empty(nbits);
        for i in iter {
            s.insert(i);
        }
        s
    }

    /// Builds a set directly from backing words (for bulk signature
    /// computation). Panics if `words` has the wrong length; excess bits
    /// beyond `nbits` are cleared.
    pub fn from_words(nbits: usize, words: Vec<u64>) -> Self {
        assert_eq!(words.len(), word_count(nbits), "word count mismatch");
        let mut s = BitSet {
            nbits,
            words: words.into_boxed_slice(),
        };
        s.clear_excess();
        s
    }

    #[inline]
    fn clear_excess(&mut self) {
        let rem = self.nbits % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        if self.nbits == 0 {
            for w in self.words.iter_mut() {
                *w = 0;
            }
        }
    }

    /// The size of the universe (number of addressable positions).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Inserts position `i`. Panics if out of range.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.nbits, "bit {i} out of range {}", self.nbits);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Removes position `i`. Panics if out of range.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.nbits, "bit {i} out of range {}", self.nbits);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.nbits {
            return false;
        }
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ⊆ other`. Both sets must share a universe size.
    #[inline]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.nbits, other.nbits, "universe mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(&a, &b)| a & !b == 0)
    }

    /// `self ⊊ other` (proper subset).
    #[inline]
    pub fn is_proper_subset(&self, other: &BitSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// In-place intersection: `self ← self ∩ other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.nbits, other.nbits, "universe mismatch");
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= b;
        }
    }

    /// Returns `self ∩ other` as a new set.
    pub fn intersection(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// In-place union: `self ← self ∪ other`.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.nbits, other.nbits, "universe mismatch");
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Returns `self ∪ other` as a new set.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// In-place difference: `self ← self \ other`.
    #[inline]
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.nbits, other.nbits, "universe mismatch");
        for (a, &b) in self.words.iter_mut().zip(other.words.iter()) {
            *a &= !b;
        }
    }

    /// Whether `self ∩ other ⊆ third`, computed without allocating.
    ///
    /// This is the Lemma 3.4 test (`T(S⁺) ∩ T(t) ⊆ T(t′)`) on the hot path of
    /// certain-negative checking.
    #[inline]
    pub fn intersection_is_subset(&self, other: &BitSet, third: &BitSet) -> bool {
        debug_assert_eq!(self.nbits, other.nbits, "universe mismatch");
        debug_assert_eq!(self.nbits, third.nbits, "universe mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .zip(third.words.iter())
            .all(|((&a, &b), &c)| (a & b) & !c == 0)
    }

    /// Whether `self \ {bit} ⊆ other`, computed without allocating.
    ///
    /// This is the `InferenceState` θ-certain test: pair `k` belongs to
    /// every consistent predicate iff `T(S⁺) \ {k} ⊆ T(t′)` for some
    /// negative example `t′`.
    #[inline]
    pub fn is_subset_except(&self, other: &BitSet, bit: usize) -> bool {
        debug_assert_eq!(self.nbits, other.nbits, "universe mismatch");
        debug_assert!(bit < self.nbits, "bit out of range");
        let (wi, mask) = (bit / WORD_BITS, 1u64 << (bit % WORD_BITS));
        self.words
            .iter()
            .zip(other.words.iter())
            .enumerate()
            .all(|(i, (&a, &b))| {
                let mut excess = a & !b;
                if i == wi {
                    excess &= !mask;
                }
                excess == 0
            })
    }

    /// Iterates over the nonzero backing words as `(word_index, word)`
    /// pairs — the word-level walk in-place set algebra is built from.
    pub fn iter_set_words(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .map(|(i, &w)| (i, w))
    }

    /// Iterates over set positions in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + b)
                }
            })
        })
    }

    /// Raw words, exposed for hashing-sensitive callers.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw words, for callers assembling masks in place (the
    /// incremental inference state's word-OR updates). Bits at or above
    /// [`BitSet::capacity`] must stay zero.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// `|self ∩ other|` without materializing the intersection — see the
    /// free function [`count_and`].
    #[inline]
    pub fn count_and(&self, other: &BitSet) -> usize {
        count_and(&self.words, &other.words)
    }

    /// The `n`-th (0-based, ascending) set position — see the free function
    /// [`nth_set_bit`].
    #[inline]
    pub fn nth_set_bit(&self, n: usize) -> Option<usize> {
        nth_set_bit(&self.words, n)
    }
}

impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        self.nbits == other.nbits && self.words == other.words
    }
}
impl Eq for BitSet {}

impl Hash for BitSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.words.hash(state);
    }
}

impl PartialOrd for BitSet {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Lexicographic order on words; used only to make iteration orders
/// deterministic, not as the lattice order.
impl Ord for BitSet {
    fn cmp(&self, other: &Self) -> Ordering {
        self.words
            .cmp(&other.words)
            .then(self.nbits.cmp(&other.nbits))
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSet{{")?;
        let mut first = true;
        for i in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = BitSet::empty(130);
        let f = BitSet::full(130);
        assert!(e.is_empty());
        assert_eq!(f.len(), 130);
        assert!(e.is_subset(&f));
        assert!(!f.is_subset(&e));
        assert!(f.contains(129));
        assert!(!f.contains(130));
    }

    #[test]
    fn full_clears_excess_bits() {
        let f = BitSet::full(65);
        assert_eq!(f.len(), 65);
        assert_eq!(f.words()[1], 1);
        let f0 = BitSet::full(0);
        assert!(f0.is_empty());
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::empty(100);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert_eq!(s.len(), 4);
        assert!(s.contains(63) && s.contains(64));
        s.remove(63);
        assert!(!s.contains(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::empty(10).insert(10);
    }

    #[test]
    fn subset_semantics() {
        let a = BitSet::from_iter(70, [1, 65]);
        let b = BitSet::from_iter(70, [1, 3, 65]);
        assert!(a.is_subset(&b));
        assert!(a.is_proper_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(!a.is_proper_subset(&a));
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter(10, [1, 2, 3]);
        let b = BitSet::from_iter(10, [3, 4]);
        assert_eq!(a.intersection(&b), BitSet::from_iter(10, [3]));
        assert_eq!(a.union(&b), BitSet::from_iter(10, [1, 2, 3, 4]));
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d, BitSet::from_iter(10, [1, 2]));
    }

    #[test]
    fn intersection_is_subset_matches_naive() {
        let a = BitSet::from_iter(70, [1, 5, 66]);
        let b = BitSet::from_iter(70, [5, 66, 69]);
        let c = BitSet::from_iter(70, [5, 66]);
        assert!(a.intersection_is_subset(&b, &c));
        let c2 = BitSet::from_iter(70, [5]);
        assert!(!a.intersection_is_subset(&b, &c2));
        assert_eq!(
            a.intersection_is_subset(&b, &c2),
            a.intersection(&b).is_subset(&c2)
        );
    }

    #[test]
    fn iter_yields_sorted_positions() {
        let s = BitSet::from_iter(130, [129, 0, 64, 63, 7]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![0, 7, 63, 64, 129]);
    }

    #[test]
    fn debug_format() {
        let s = BitSet::from_iter(8, [1, 3]);
        assert_eq!(format!("{s:?}"), "BitSet{1,3}");
    }

    #[test]
    fn is_subset_except_matches_naive() {
        let a = BitSet::from_iter(70, [1, 5, 66]);
        let b = BitSet::from_iter(70, [1, 5]);
        // a ⊄ b, but a \ {66} ⊆ b.
        assert!(!a.is_subset(&b));
        assert!(a.is_subset_except(&b, 66));
        assert!(!a.is_subset_except(&b, 5));
        // Excluding a bit not in `a` changes nothing.
        assert!(!a.is_subset_except(&b, 2));
        for bit in 0..70 {
            let mut without = a.clone();
            if without.contains(bit) {
                without.remove(bit);
            }
            assert_eq!(
                a.is_subset_except(&b, bit),
                without.is_subset(&b),
                "mismatch at bit {bit}"
            );
        }
    }

    #[test]
    fn iter_set_words_skips_zero_words() {
        let s = BitSet::from_iter(200, [0, 63, 130]);
        let words: Vec<(usize, u64)> = s.iter_set_words().collect();
        assert_eq!(words.len(), 2);
        assert_eq!(words[0], (0, (1 << 0) | (1 << 63)));
        assert_eq!(words[1], (2, 1 << 2));
        assert_eq!(BitSet::empty(100).iter_set_words().count(), 0);
    }

    #[test]
    fn word_count_and_hash_words_helpers() {
        assert_eq!(word_count(0), 0);
        assert_eq!(word_count(1), 1);
        assert_eq!(word_count(64), 1);
        assert_eq!(word_count(65), 2);
        // Deterministic, and sensitive to content.
        let a = [1u64, 2, 3];
        let b = [1u64, 2, 4];
        assert_eq!(hash_words(&a), hash_words(&a));
        assert_ne!(hash_words(&a), hash_words(&b));
    }

    #[test]
    fn or_shifted_matches_per_bit_insertion() {
        // Place a 70-bit mask at every offset of a 300-bit buffer and check
        // against naive insertion.
        let m = 70usize;
        let mask_bits = [0usize, 3, 63, 64, 69];
        let mut mask = vec![0u64; word_count(m)];
        for &b in &mask_bits {
            mask[b / WORD_BITS] |= 1u64 << (b % WORD_BITS);
        }
        for base in 0..(300 - m) {
            let mut dst = vec![0u64; word_count(300)];
            or_shifted(&mut dst, &mask, base);
            let mut expect = BitSet::empty(300);
            for &b in &mask_bits {
                expect.insert(base + b);
            }
            assert_eq!(
                BitSet::from_words(300, dst),
                expect,
                "mismatch at base {base}"
            );
        }
    }

    #[test]
    fn or_shifted_accumulates() {
        let mut dst = vec![0u64; 2];
        or_shifted(&mut dst, &[0b11], 0);
        or_shifted(&mut dst, &[0b11], 63);
        let s = BitSet::from_words(128, dst);
        let expect = BitSet::from_iter(128, [0, 1, 63, 64]);
        assert_eq!(s, expect);
    }

    #[test]
    fn clone_from_reuses_and_resizes() {
        let a = BitSet::from_iter(130, [0, 64, 129]);
        let mut b = BitSet::full(130);
        b.clone_from(&a); // same word count: in-place copy
        assert_eq!(a, b);
        let mut c = BitSet::empty(10);
        c.clone_from(&a); // different word count: reallocates
        assert_eq!(a, c);
    }

    #[test]
    fn count_and_matches_materialized_intersection() {
        let a = BitSet::from_iter(200, [0, 63, 64, 130, 199]);
        let b = BitSet::from_iter(200, [63, 64, 131, 199]);
        assert_eq!(a.count_and(&b), a.intersection(&b).len());
        assert_eq!(a.count_and(&b), 3);
        // Free-function form tolerates length mismatches (missing words = 0).
        assert_eq!(count_and(a.words(), &b.words()[..1]), 1);
        assert_eq!(count_and(&[], a.words()), 0);
    }

    #[test]
    fn nth_set_bit_is_select() {
        let positions = [0usize, 7, 63, 64, 129, 190];
        let s = BitSet::from_iter(200, positions);
        for (n, &p) in positions.iter().enumerate() {
            assert_eq!(s.nth_set_bit(n), Some(p), "select({n})");
        }
        assert_eq!(s.nth_set_bit(positions.len()), None);
        assert_eq!(BitSet::empty(10).nth_set_bit(0), None);
        // Agrees with the iterator for every rank.
        for (n, p) in s.iter().enumerate() {
            assert_eq!(s.nth_set_bit(n), Some(p));
        }
    }

    #[test]
    fn words_mut_round_trips() {
        let mut s = BitSet::empty(100);
        s.words_mut()[1] |= 1; // bit 64
        assert!(s.contains(64));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn hash_eq_consistency() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(BitSet::from_iter(70, [1, 2]));
        set.insert(BitSet::from_iter(70, [1, 2]));
        set.insert(BitSet::from_iter(70, [1]));
        assert_eq!(set.len(), 2);
    }
}
