//! Minimal CSV reading/writing for relations.
//!
//! Supports the common subset: comma separation, optional double-quote
//! quoting with `""` escapes, one header line with attribute names. Integer
//! cells are parsed as [`Value::Int`]; everything else is a string.

use crate::error::{RelationError, Result};
use crate::interner::Interner;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::Value;
use std::fmt::Write as _;

/// Splits one CSV record into fields, handling double-quote quoting.
fn split_record(line: &str, lineno: usize) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                ',' => {
                    fields.push(std::mem::take(&mut cur));
                }
                '"' => {
                    if cur.is_empty() {
                        in_quotes = true;
                    } else {
                        return Err(RelationError::Csv {
                            line: lineno,
                            message: "quote in unquoted field".into(),
                        });
                    }
                }
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(RelationError::Csv {
            line: lineno,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(cur);
    Ok(fields)
}

/// Parses a relation from CSV text. The first line is the header.
pub fn relation_from_csv(interner: &Interner, name: &str, text: &str) -> Result<Relation> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (hline, header) = lines.next().ok_or(RelationError::Csv {
        line: 1,
        message: "empty document".into(),
    })?;
    let attrs = split_record(header, hline + 1)?;
    let attr_refs: Vec<&str> = attrs.iter().map(String::as_str).collect();
    let mut rel = Relation::new(Schema::new(name, &attr_refs)?);
    for (i, line) in lines {
        let cells = split_record(line, i + 1)?;
        if cells.len() != attrs.len() {
            return Err(RelationError::Csv {
                line: i + 1,
                message: format!("expected {} fields, found {}", attrs.len(), cells.len()),
            });
        }
        let values: Vec<Value> = cells.iter().map(|c| Value::parse_cell(c)).collect();
        rel.push_row(interner, &values)?;
    }
    Ok(rel)
}

fn write_cell(out: &mut String, cell: &str) {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        out.push('"');
        for c in cell.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(cell);
    }
}

/// Serializes a relation to CSV text (header + rows).
pub fn relation_to_csv(interner: &Interner, relation: &Relation) -> String {
    let mut out = String::new();
    let schema = relation.schema();
    for (i, a) in schema.attrs().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_cell(&mut out, a);
    }
    out.push('\n');
    for row in relation.rows() {
        for (i, v) in row.resolve(interner).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut cell = String::new();
            let _ = write!(cell, "{v}");
            write_cell(&mut out, &cell);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let it = Interner::new();
        let rel = relation_from_csv(&it, "Hotel", "City,Discount\nNYC,AA\nParis,None\n").unwrap();
        assert_eq!(
            rel.schema().attrs(),
            &["City".to_string(), "Discount".to_string()]
        );
        assert_eq!(rel.len(), 2);
        assert_eq!(
            rel.rows()[0].resolve(&it),
            vec![Value::str("NYC"), Value::str("AA")]
        );
    }

    #[test]
    fn integers_are_typed() {
        let it = Interner::new();
        let rel = relation_from_csv(&it, "R", "A,B\n1,x\n-2,3\n").unwrap();
        assert_eq!(
            rel.rows()[0].resolve(&it),
            vec![Value::int(1), Value::str("x")]
        );
        assert_eq!(
            rel.rows()[1].resolve(&it),
            vec![Value::int(-2), Value::int(3)]
        );
    }

    #[test]
    fn quoted_fields() {
        let it = Interner::new();
        let rel = relation_from_csv(&it, "R", "A\n\"a,b\"\n\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(rel.rows()[0].resolve(&it), vec![Value::str("a,b")]);
        assert_eq!(
            rel.rows()[1].resolve(&it),
            vec![Value::str("he said \"hi\"")]
        );
    }

    #[test]
    fn field_count_mismatch_is_reported() {
        let it = Interner::new();
        let e = relation_from_csv(&it, "R", "A,B\n1\n").unwrap_err();
        assert!(matches!(e, RelationError::Csv { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_is_reported() {
        let it = Interner::new();
        let e = relation_from_csv(&it, "R", "A\n\"oops\n").unwrap_err();
        assert!(matches!(e, RelationError::Csv { .. }));
    }

    #[test]
    fn empty_document_is_reported() {
        let it = Interner::new();
        let e = relation_from_csv(&it, "R", "").unwrap_err();
        assert!(matches!(e, RelationError::Csv { line: 1, .. }));
    }

    #[test]
    fn round_trip() {
        let it = Interner::new();
        let src = "City,Note\nNYC,\"a,b\"\n7,plain\n";
        let rel = relation_from_csv(&it, "H", src).unwrap();
        let out = relation_to_csv(&it, &rel);
        let rel2 = relation_from_csv(&it, "H", &out).unwrap();
        assert_eq!(rel.rows(), rel2.rows());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let it = Interner::new();
        let rel = relation_from_csv(&it, "R", "A\n\n1\n\n2\n").unwrap();
        assert_eq!(rel.len(), 2);
    }
}
