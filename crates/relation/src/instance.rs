//! Two-relation database instances and the attribute-pair space Ω.
//!
//! An [`Instance`] is the paper's `I = (Rᴵ, Pᴵ)`: two relations with disjoint
//! attribute sets sharing one value interner. The instance also owns the
//! *pair space* `Ω = attrs(R) × attrs(P)` over which every join predicate is
//! a bit set, and computes the most specific predicate
//! `T(t) = {(Ai,Bj) | tR[Ai] = tP[Bj]}` for tuples of the Cartesian product.

use crate::bitset::BitSet;
use crate::error::{RelationError, Result};
use crate::interner::{Interner, Symbol};
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// The space of attribute pairs `Ω = attrs(R) × attrs(P)`.
///
/// Pair `(Ai, Bj)` is addressed by the dense index `i·m + j` where `m` is the
/// arity of `P`. Join predicates are [`BitSet`]s of capacity [`PairSpace::len`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PairSpace {
    n: usize,
    m: usize,
}

impl PairSpace {
    /// Creates the pair space for relations of arity `n` (R) and `m` (P).
    pub fn new(n: usize, m: usize) -> Self {
        PairSpace { n, m }
    }

    /// Arity of `R`.
    pub fn arity_r(&self) -> usize {
        self.n
    }

    /// Arity of `P`.
    pub fn arity_p(&self) -> usize {
        self.m
    }

    /// `|Ω| = n·m`.
    pub fn len(&self) -> usize {
        self.n * self.m
    }

    /// Whether Ω is empty (one of the relations has arity 0).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Dense index of the pair `(Ai, Bj)`.
    #[inline]
    pub fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.n && j < self.m);
        i * self.m + j
    }

    /// Inverse of [`PairSpace::index`].
    #[inline]
    pub fn decode(&self, k: usize) -> (usize, usize) {
        debug_assert!(k < self.len());
        (k / self.m, k % self.m)
    }

    /// The full predicate Ω (the most specific join predicate).
    pub fn omega(&self) -> BitSet {
        BitSet::full(self.len())
    }

    /// Computes `T(t)` for a product tuple given as two raw interned-symbol
    /// rows (the [`crate::interner::Symbol`] indices), without going through
    /// an [`Instance`]. Same dense layout and semantics as
    /// [`Instance::signature_into`]; `out` is cleared first.
    ///
    /// This is the delta-maintenance primitive: incremental universe
    /// updates pair an edited row against opposite-side profile
    /// representatives held outside any materialized relation.
    pub fn signature_of_into(&self, r: &[u32], p: &[u32], out: &mut BitSet) {
        debug_assert_eq!(r.len(), self.n);
        debug_assert_eq!(p.len(), self.m);
        debug_assert_eq!(out.capacity(), self.len());
        for w in out.words_mut() {
            *w = 0;
        }
        for (i, &vr) in r.iter().enumerate() {
            for (j, &vp) in p.iter().enumerate() {
                if vr == vp {
                    out.insert(self.index(i, j));
                }
            }
        }
    }

    /// The empty predicate ∅ (the most general join predicate).
    pub fn bottom(&self) -> BitSet {
        BitSet::empty(self.len())
    }
}

/// A database instance `I = (Rᴵ, Pᴵ)` with a shared interner.
#[derive(Debug, Clone)]
pub struct Instance {
    interner: Arc<Interner>,
    r: Relation,
    p: Relation,
    pairs: PairSpace,
}

impl Instance {
    /// Assembles an instance from two relations that were interned through
    /// `interner`. Fails if the attribute sets overlap (the paper assumes
    /// `attrs(R) ∩ attrs(P) = ∅`).
    pub fn new(interner: Arc<Interner>, r: Relation, p: Relation) -> Result<Self> {
        for a in r.schema().attrs() {
            if p.schema().attrs().contains(a) {
                return Err(RelationError::OverlappingAttributes {
                    attribute: a.clone(),
                });
            }
        }
        let pairs = PairSpace::new(r.schema().arity(), p.schema().arity());
        Ok(Instance {
            interner,
            r,
            p,
            pairs,
        })
    }

    /// The shared value interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// A clone of the interner handle (shared with streaming producers).
    pub fn interner_handle(&self) -> Arc<Interner> {
        Arc::clone(&self.interner)
    }

    /// Relation `R`.
    pub fn r(&self) -> &Relation {
        &self.r
    }

    /// Relation `P`.
    pub fn p(&self) -> &Relation {
        &self.p
    }

    /// The attribute-pair space Ω.
    pub fn pairs(&self) -> PairSpace {
        self.pairs
    }

    /// Dense pair index for `(Ai, Bj)` by position.
    pub fn pair_index(&self, i: usize, j: usize) -> usize {
        self.pairs.index(i, j)
    }

    /// Dense pair index for `(a, b)` by attribute name.
    pub fn pair_index_by_name(&self, a: &str, b: &str) -> Result<usize> {
        let i = self.r.schema().attr_index(a)?;
        let j = self.p.schema().attr_index(b)?;
        Ok(self.pairs.index(i, j))
    }

    /// Human-readable name of pair index `k`, e.g. `"Flight.To=Hotel.City"`.
    pub fn pair_name(&self, k: usize) -> String {
        let (i, j) = self.pairs.decode(k);
        format!(
            "{}.{}={}.{}",
            self.r.schema().name(),
            self.r.schema().attr_name(i),
            self.p.schema().name(),
            self.p.schema().attr_name(j)
        )
    }

    /// Formats a predicate bit set as a set of named equalities.
    pub fn predicate_string(&self, theta: &BitSet) -> String {
        if theta.is_empty() {
            return "{}".to_string();
        }
        let parts: Vec<String> = theta.iter().map(|k| self.pair_name(k)).collect();
        format!("{{{}}}", parts.join(" ∧ "))
    }

    /// `|D| = |R| · |P|`, the size of the Cartesian product.
    pub fn product_size(&self) -> u64 {
        self.r.len() as u64 * self.p.len() as u64
    }

    /// Computes `T(t)` for the product tuple `t = (R[ri], P[pi])`:
    /// the set of attribute pairs on which the two tuples agree.
    pub fn signature(&self, ri: usize, pi: usize) -> BitSet {
        let mut sig = self.pairs.bottom();
        self.signature_into(ri, pi, &mut sig);
        sig
    }

    /// Like [`Instance::signature`] but reuses `out` (cleared first).
    pub fn signature_into(&self, ri: usize, pi: usize, out: &mut BitSet) {
        debug_assert_eq!(out.capacity(), self.pairs.len());
        *out = self.pairs.bottom();
        let tr = &self.r.rows()[ri];
        let tp = &self.p.rows()[pi];
        for i in 0..self.pairs.n {
            let vr = tr.get(i);
            for j in 0..self.pairs.m {
                if vr == tp.get(j) {
                    out.insert(self.pairs.index(i, j));
                }
            }
        }
    }

    /// Whether product tuple `(ri, pi)` is selected by `theta`,
    /// i.e. `θ ⊆ T(t)`.
    pub fn selects(&self, theta: &BitSet, ri: usize, pi: usize) -> bool {
        let tr = &self.r.rows()[ri];
        let tp = &self.p.rows()[pi];
        theta.iter().all(|k| {
            let (i, j) = self.pairs.decode(k);
            tr.get(i) == tp.get(j)
        })
    }

    /// Evaluates the equijoin `R ⋈θ P`, returning row-index pairs.
    pub fn equijoin(&self, theta: &BitSet) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for ri in 0..self.r.len() {
            for pi in 0..self.p.len() {
                if self.selects(theta, ri, pi) {
                    out.push((ri, pi));
                }
            }
        }
        out
    }

    /// Evaluates the semijoin `R ⋉θ P`, returning R-row indices.
    pub fn semijoin(&self, theta: &BitSet) -> Vec<usize> {
        let mut out = Vec::new();
        for ri in 0..self.r.len() {
            if (0..self.p.len()).any(|pi| self.selects(theta, ri, pi)) {
                out.push(ri);
            }
        }
        out
    }

    /// Sentinel in a [join profile](Instance::r_profile_key) marking a
    /// symbol that occurs in only one of the two relations and therefore
    /// can never witness an equality.
    pub const PROFILE_HOLE: u32 = u32::MAX;

    /// The symbols occurring in **both** relations — the only values that
    /// can contribute a bit to any signature `T(t)`. Computed by
    /// intersecting the two relations' interned symbol sets; capacity is
    /// the interner's current size.
    pub fn shared_symbols(&self) -> BitSet {
        let cap = self.interner.len();
        let mut set = self.r.symbol_set(cap);
        set.intersect_with(&self.p.symbol_set(cap));
        set
    }

    /// The *join profile* of R-row `ri`: its symbol tuple with every symbol
    /// outside `shared` (see [`shared_symbols`](Instance::shared_symbols))
    /// replaced by [`PROFILE_HOLE`](Instance::PROFILE_HOLE).
    ///
    /// Two R-rows with equal join profiles have identical signatures
    /// `T((r, p))` against *every* P-row `p`: a signature bit `(i, j)` only
    /// depends on whether `r[i] = p[j]`, and a symbol absent from `P`
    /// matches no P-cell at all. This is what lets `Universe::build`
    /// deduplicate rows into weighted profiles before enumerating any
    /// product pair.
    pub fn r_profile_key(&self, ri: usize, shared: &BitSet) -> Box<[u32]> {
        profile_key(&self.r.rows()[ri], shared)
    }

    /// The join profile of P-row `pi` (see
    /// [`r_profile_key`](Instance::r_profile_key), with the roles of the
    /// relations swapped).
    pub fn p_profile_key(&self, pi: usize, shared: &BitSet) -> Box<[u32]> {
        profile_key(&self.p.rows()[pi], shared)
    }

    /// Appends an already-interned row of raw symbol ids to `side`,
    /// returning the new row's index within that relation. Arity-checked.
    ///
    /// Delta maintenance appends the representative row of each
    /// newly-created join profile here, so class representatives always
    /// point at materialized instance rows.
    pub fn push_symbol_row(&mut self, side: crate::stream::Side, syms: &[u32]) -> Result<usize> {
        let rel = match side {
            crate::stream::Side::R => &mut self.r,
            crate::stream::Side::P => &mut self.p,
        };
        let tuple = Tuple::new(syms.iter().map(|&s| Symbol(s)).collect::<Vec<_>>());
        rel.push_tuple(tuple)?;
        Ok(rel.len() - 1)
    }

    /// Overwrites row `index` of `side` with raw symbol ids (arity- and
    /// bounds-checked). Used when a join profile's representative row is
    /// deleted but the profile survives: the instance row is repointed at a
    /// surviving row of the same profile, which provably preserves every
    /// signature computed against it.
    pub fn overwrite_symbol_row(
        &mut self,
        side: crate::stream::Side,
        index: usize,
        syms: &[u32],
    ) -> Result<()> {
        let tuple = Tuple::new(syms.iter().map(|&s| Symbol(s)).collect::<Vec<_>>());
        match side {
            crate::stream::Side::R => self.r.overwrite_row(index, tuple),
            crate::stream::Side::P => self.p.overwrite_row(index, tuple),
        }
    }

    /// Iterates over all product tuples as `(ri, pi)` pairs.
    pub fn product(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let pl = self.p.len();
        (0..self.r.len()).flat_map(move |ri| (0..pl).map(move |pi| (ri, pi)))
    }

    /// Resolves a product tuple into its concatenated values (for display).
    pub fn product_tuple_values(&self, ri: usize, pi: usize) -> Vec<Value> {
        let mut vs = self.r.rows()[ri].resolve(&self.interner);
        vs.extend(self.p.rows()[pi].resolve(&self.interner));
        vs
    }
}

// Row canonicalization is shared with the streaming ingestion path so
// materialized and streamed builds produce identical profile keys.
use crate::stream::profile_key;

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Instance[{} ({} rows) × {} ({} rows), |Ω|={}]",
            self.r.schema(),
            self.r.len(),
            self.p.schema(),
            self.p.len(),
            self.pairs.len()
        )
    }
}

/// Builder assembling an [`Instance`] step by step.
///
/// ```
/// use jqi_relation::{InstanceBuilder, Value};
/// let mut b = InstanceBuilder::new();
/// b.relation_r("R", &["A1", "A2"]);
/// b.relation_p("P", &["B1"]);
/// b.row_r(&[Value::int(0), Value::int(1)]);
/// b.row_p(&[Value::int(1)]);
/// let inst = b.build().unwrap();
/// assert_eq!(inst.product_size(), 1);
/// ```
#[derive(Default)]
pub struct InstanceBuilder {
    interner: Arc<Interner>,
    r: Option<Relation>,
    p: Option<Relation>,
    error: Option<RelationError>,
}

impl InstanceBuilder {
    /// Starts an empty builder with a fresh interner.
    pub fn new() -> Self {
        Self::default()
    }

    fn record<T>(&mut self, r: Result<T>) {
        if let (Err(e), None) = (r, &self.error) {
            self.error = Some(e);
        }
    }

    /// Declares relation `R`.
    pub fn relation_r(&mut self, name: &str, attrs: &[&str]) -> &mut Self {
        match crate::schema::Schema::new(name, attrs) {
            Ok(s) => self.r = Some(Relation::new(s)),
            Err(e) => self.record::<()>(Err(e)),
        }
        self
    }

    /// Declares relation `P`.
    pub fn relation_p(&mut self, name: &str, attrs: &[&str]) -> &mut Self {
        match crate::schema::Schema::new(name, attrs) {
            Ok(s) => self.p = Some(Relation::new(s)),
            Err(e) => self.record::<()>(Err(e)),
        }
        self
    }

    /// Appends a row to `R`.
    pub fn row_r(&mut self, values: &[Value]) -> &mut Self {
        match (&mut self.r, &self.error) {
            (Some(rel), None) => {
                let res = rel.push_row(&self.interner, values);
                self.record(res);
            }
            (None, None) => self.error = Some(RelationError::MissingRelation { which: "R" }),
            _ => {}
        }
        self
    }

    /// Appends a row to `P`.
    pub fn row_p(&mut self, values: &[Value]) -> &mut Self {
        match (&mut self.p, &self.error) {
            (Some(rel), None) => {
                let res = rel.push_row(&self.interner, values);
                self.record(res);
            }
            (None, None) => self.error = Some(RelationError::MissingRelation { which: "P" }),
            _ => {}
        }
        self
    }

    /// Appends an integer row to `R`.
    pub fn row_r_ints(&mut self, values: &[i64]) -> &mut Self {
        let vals: Vec<Value> = values.iter().map(|&i| Value::Int(i)).collect();
        self.row_r(&vals)
    }

    /// Appends an integer row to `P`.
    pub fn row_p_ints(&mut self, values: &[i64]) -> &mut Self {
        let vals: Vec<Value> = values.iter().map(|&i| Value::Int(i)).collect();
        self.row_p(&vals)
    }

    /// Finishes, returning the instance or the first recorded error.
    pub fn build(self) -> Result<Instance> {
        if let Some(e) = self.error {
            return Err(e);
        }
        let r = self
            .r
            .ok_or(RelationError::MissingRelation { which: "R" })?;
        let p = self
            .p
            .ok_or(RelationError::MissingRelation { which: "P" })?;
        Instance::new(self.interner, r, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The instance of Example 2.1 of the paper.
    pub(crate) fn example_2_1() -> Instance {
        let mut b = InstanceBuilder::new();
        b.relation_r("R0", &["A1", "A2"]);
        b.relation_p("P0", &["B1", "B2", "B3"]);
        b.row_r_ints(&[0, 1]); // t1
        b.row_r_ints(&[0, 2]); // t2
        b.row_r_ints(&[2, 2]); // t3
        b.row_r_ints(&[1, 0]); // t4
        b.row_p_ints(&[1, 1, 0]); // t1'
        b.row_p_ints(&[0, 1, 2]); // t2'
        b.row_p_ints(&[2, 0, 0]); // t3'
        b.build().unwrap()
    }

    #[test]
    fn pair_space_round_trip() {
        let ps = PairSpace::new(3, 5);
        assert_eq!(ps.len(), 15);
        for i in 0..3 {
            for j in 0..5 {
                assert_eq!(ps.decode(ps.index(i, j)), (i, j));
            }
        }
    }

    #[test]
    fn example_2_1_signatures_match_figure_3() {
        let inst = example_2_1();
        let ps = inst.pairs();
        // Figure 3 of the paper, first rows:
        // T(t1,t1') = {(A1,B3),(A2,B1),(A2,B2)}
        let sig = inst.signature(0, 0);
        let expect = BitSet::from_iter(ps.len(), [ps.index(0, 2), ps.index(1, 0), ps.index(1, 1)]);
        assert_eq!(sig, expect);
        // T(t3,t1') = ∅
        assert!(inst.signature(2, 0).is_empty());
        // T(t2,t2') = {(A1,B1),(A2,B3)}
        let sig = inst.signature(1, 1);
        let expect = BitSet::from_iter(ps.len(), [ps.index(0, 0), ps.index(1, 2)]);
        assert_eq!(sig, expect);
    }

    #[test]
    fn example_2_1_joins_match_paper() {
        let inst = example_2_1();
        let ps = inst.pairs();
        // θ1 = {(A1,B1),(A2,B3)} → {(t2,t2'),(t4,t1')}
        let theta1 = BitSet::from_iter(ps.len(), [ps.index(0, 0), ps.index(1, 2)]);
        assert_eq!(inst.equijoin(&theta1), vec![(1, 1), (3, 0)]);
        assert_eq!(inst.semijoin(&theta1), vec![1, 3]);
        // θ2 = {(A2,B2)} → {(t1,t1'),(t1,t2'),(t4,t3')}
        let theta2 = BitSet::from_iter(ps.len(), [ps.index(1, 1)]);
        assert_eq!(inst.equijoin(&theta2), vec![(0, 0), (0, 1), (3, 2)]);
        assert_eq!(inst.semijoin(&theta2), vec![0, 3]);
        // θ3 = {(A2,B1),(A2,B2),(A2,B3)} → ∅
        let theta3 = BitSet::from_iter(ps.len(), [ps.index(1, 0), ps.index(1, 1), ps.index(1, 2)]);
        assert!(inst.equijoin(&theta3).is_empty());
        assert!(inst.semijoin(&theta3).is_empty());
    }

    #[test]
    fn empty_theta_selects_everything() {
        let inst = example_2_1();
        let theta = inst.pairs().bottom();
        assert_eq!(inst.equijoin(&theta).len() as u64, inst.product_size());
    }

    #[test]
    fn anti_monotonicity() {
        // θ1 ⊆ θ2 implies R ⋈θ2 P ⊆ R ⋈θ1 P  (paper §2).
        let inst = example_2_1();
        let ps = inst.pairs();
        let theta1 = BitSet::from_iter(ps.len(), [ps.index(0, 0)]);
        let theta2 = BitSet::from_iter(ps.len(), [ps.index(0, 0), ps.index(1, 2)]);
        let j1 = inst.equijoin(&theta1);
        let j2 = inst.equijoin(&theta2);
        assert!(j2.iter().all(|t| j1.contains(t)));
    }

    #[test]
    fn overlapping_attributes_rejected() {
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A", "X"]);
        b.relation_p("P", &["X"]);
        let e = b.build().unwrap_err();
        assert!(matches!(e, RelationError::OverlappingAttributes { .. }));
    }

    #[test]
    fn missing_relation_rejected() {
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        let e = b.build().unwrap_err();
        assert!(matches!(e, RelationError::MissingRelation { which: "P" }));
    }

    #[test]
    fn builder_surfaces_row_errors() {
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A"]);
        b.relation_p("P", &["B"]);
        b.row_r_ints(&[1, 2]); // wrong arity
        let e = b.build().unwrap_err();
        assert!(matches!(e, RelationError::ArityMismatch { .. }));
    }

    #[test]
    fn shared_symbols_and_profiles() {
        let mut b = InstanceBuilder::new();
        b.relation_r("R", &["A1", "A2"]);
        b.relation_p("P", &["B1"]);
        b.row_r_ints(&[1, 7]); // 7 never occurs in P
        b.row_r_ints(&[1, 9]); // 9 never occurs in P
        b.row_r_ints(&[2, 1]);
        b.row_p_ints(&[1]);
        b.row_p_ints(&[2]);
        let inst = b.build().unwrap();
        let shared = inst.shared_symbols();
        // Shared values are {1, 2}; 7 and 9 are R-only.
        assert_eq!(shared.len(), 2);
        // Rows 0 and 1 differ only in an unmatchable symbol → same profile.
        let k0 = inst.r_profile_key(0, &shared);
        let k1 = inst.r_profile_key(1, &shared);
        let k2 = inst.r_profile_key(2, &shared);
        assert_eq!(k0, k1);
        assert_ne!(k0, k2);
        assert_eq!(k0[1], Instance::PROFILE_HOLE);
        // Equal profiles ⇒ equal signatures against every P-row.
        for pi in 0..inst.p().len() {
            assert_eq!(inst.signature(0, pi), inst.signature(1, pi));
        }
    }

    #[test]
    fn predicate_display() {
        let inst = example_2_1();
        let ps = inst.pairs();
        let theta = BitSet::from_iter(ps.len(), [ps.index(0, 0), ps.index(1, 2)]);
        assert_eq!(inst.predicate_string(&theta), "{R0.A1=P0.B1 ∧ R0.A2=P0.B3}");
        assert_eq!(inst.predicate_string(&ps.bottom()), "{}");
    }

    #[test]
    fn selects_agrees_with_signature_subset() {
        let inst = example_2_1();
        let ps = inst.pairs();
        let theta = BitSet::from_iter(ps.len(), [ps.index(0, 0)]);
        for (ri, pi) in inst.product() {
            let sig = inst.signature(ri, pi);
            assert_eq!(inst.selects(&theta, ri, pi), theta.is_subset(&sig));
        }
    }
}
