//! Relations: a schema plus a bag of tuples.

use crate::bitset::BitSet;
use crate::error::{RelationError, Result};
use crate::interner::Interner;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;

/// A relation instance: schema plus rows of interned tuples.
///
/// Rows are a *bag* (duplicates allowed), matching SQL semantics and the
/// paper's use of raw data tables.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    rows: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// The row at `index`, with a proper error on overflow.
    pub fn row(&self, index: usize) -> Result<&Tuple> {
        self.rows
            .get(index)
            .ok_or_else(|| RelationError::RowOutOfBounds {
                relation: self.schema.name().to_string(),
                index,
                len: self.rows.len(),
            })
    }

    /// Appends an already-interned tuple, checking arity.
    pub fn push_tuple(&mut self, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        self.rows.push(tuple);
        Ok(())
    }

    /// Interns `values` through `interner` and appends the row.
    pub fn push_row(&mut self, interner: &Interner, values: &[Value]) -> Result<()> {
        if values.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        self.rows.push(Tuple::intern(interner, values));
        Ok(())
    }

    /// Replaces the row at `index` with an already-interned tuple, checking
    /// arity and bounds. Delta maintenance uses this to keep a retired
    /// profile representative's instance row pointing at a surviving row of
    /// the same profile.
    pub fn overwrite_row(&mut self, index: usize, tuple: Tuple) -> Result<()> {
        if tuple.arity() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                relation: self.schema.name().to_string(),
                expected: self.schema.arity(),
                got: tuple.arity(),
            });
        }
        match self.rows.get_mut(index) {
            Some(slot) => {
                *slot = tuple;
                Ok(())
            }
            None => Err(RelationError::RowOutOfBounds {
                relation: self.schema.name().to_string(),
                index,
                len: self.rows.len(),
            }),
        }
    }

    /// Reserves capacity for `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        self.rows.reserve(additional);
    }

    /// The set of value symbols appearing anywhere in this relation, as a
    /// bitset over symbol indices `0..cap` (pass the interner's
    /// [`len`](Interner::len) as `cap`). One linear pass over the rows.
    pub fn symbol_set(&self, cap: usize) -> BitSet {
        let mut set = BitSet::empty(cap);
        for row in &self.rows {
            for &sym in row.symbols() {
                set.insert(sym.index());
            }
        }
        set
    }
}

/// Incremental builder for a [`Relation`] bound to an interner.
pub struct RelationBuilder<'a> {
    interner: &'a Interner,
    relation: Relation,
}

impl<'a> RelationBuilder<'a> {
    /// Starts building a relation with `name` and `attrs`.
    pub fn new(interner: &'a Interner, name: &str, attrs: &[&str]) -> Result<Self> {
        Ok(RelationBuilder {
            interner,
            relation: Relation::new(Schema::new(name, attrs)?),
        })
    }

    /// Appends one row of values.
    pub fn row(&mut self, values: &[Value]) -> Result<&mut Self> {
        self.relation.push_row(self.interner, values)?;
        Ok(self)
    }

    /// Appends one row of integers (convenience for synthetic data).
    pub fn row_ints(&mut self, values: &[i64]) -> Result<&mut Self> {
        let vals: Vec<Value> = values.iter().map(|&i| Value::Int(i)).collect();
        self.row(&vals)
    }

    /// Finishes and returns the relation.
    pub fn build(self) -> Relation {
        self.relation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flights(it: &Interner) -> Relation {
        let mut b = RelationBuilder::new(it, "Flight", &["From", "To", "Airline"]).unwrap();
        b.row(&[Value::str("Paris"), Value::str("Lille"), Value::str("AF")])
            .unwrap();
        b.row(&[Value::str("Lille"), Value::str("NYC"), Value::str("AA")])
            .unwrap();
        b.build()
    }

    #[test]
    fn build_and_read() {
        let it = Interner::new();
        let r = flights(&it);
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().name(), "Flight");
        assert_eq!(
            r.rows()[0].resolve(&it),
            vec![Value::str("Paris"), Value::str("Lille"), Value::str("AF")]
        );
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let it = Interner::new();
        let mut r = Relation::new(Schema::new("R", &["A", "B"]).unwrap());
        let e = r.push_row(&it, &[Value::int(1)]).unwrap_err();
        assert!(matches!(
            e,
            RelationError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn duplicates_are_kept() {
        let it = Interner::new();
        let mut b = RelationBuilder::new(&it, "R", &["A"]).unwrap();
        b.row_ints(&[1]).unwrap();
        b.row_ints(&[1]).unwrap();
        let r = b.build();
        assert_eq!(r.len(), 2, "relations are bags");
    }

    #[test]
    fn row_out_of_bounds() {
        let it = Interner::new();
        let r = flights(&it);
        assert!(r.row(1).is_ok());
        let e = r.row(2).unwrap_err();
        assert!(matches!(
            e,
            RelationError::RowOutOfBounds {
                index: 2,
                len: 2,
                ..
            }
        ));
    }
}
