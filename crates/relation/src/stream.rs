//! Streaming row ingestion: chunks of interned tuples flowing into a
//! universe build without ever materializing a full relation.
//!
//! The materialized path ([`crate::Instance`]) holds every row of both
//! relations in RAM before profile extraction starts. At real TPC-H scale
//! factors that caps the system long before the *inference* structures do —
//! the number of distinct join profiles (and T-equivalence classes) is tiny
//! compared to the row count. This module provides the relation-layer half
//! of the streaming alternative:
//!
//! * [`StreamSchema`] — the static part of an instance: two disjoint
//!   schemas sharing one interner, plus the pair space Ω. It is what a
//!   chunk producer and a profile-folding consumer agree on up front.
//! * [`RowChunk`] — a batch of interned rows for one side ([`Side::R`] or
//!   [`Side::P`]), the unit flowing through bounded channels from
//!   generator workers to ingestion workers.
//! * [`profile_key`] — the per-row canonicalization (symbols outside the
//!   shared set collapse to [`PROFILE_HOLE`]) that makes rows with equal
//!   keys interchangeable against every opposite-side row; the consumer
//!   folds chunks into `profile key → weight` maps and drops the rows.
//!
//! The consumer half — accumulating weighted profiles and assembling the
//! universe — lives in `jqi_core::ingest`.

use crate::bitset::BitSet;
use crate::error::{RelationError, Result};
use crate::instance::{Instance, PairSpace};
use crate::interner::Interner;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::sync::Arc;

/// Sentinel marking a profile-key position whose symbol cannot witness any
/// equality (it occurs on only one side). Equals [`Instance::PROFILE_HOLE`].
pub const PROFILE_HOLE: u32 = u32::MAX;

/// Which relation of the instance a [`RowChunk`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The left relation `R`.
    R,
    /// The right relation `P`.
    P,
}

impl Side {
    /// Display name (`"R"` / `"P"`).
    pub fn name(self) -> &'static str {
        match self {
            Side::R => "R",
            Side::P => "P",
        }
    }

    /// The other side.
    pub fn opposite(self) -> Side {
        match self {
            Side::R => Side::P,
            Side::P => Side::R,
        }
    }
}

/// A batch of interned rows for one side of the instance — the unit of a
/// profile stream.
///
/// Rows are already interned against the [`StreamSchema`]'s interner (the
/// interner is thread-safe, so generator workers intern concurrently).
/// Chunk *order within a side* defines the global row numbering the
/// deterministic profile merge relies on; the producer must emit each
/// side's chunks in a fixed order regardless of how many workers generated
/// them.
#[derive(Debug, Clone)]
pub struct RowChunk {
    /// Which relation the rows extend.
    pub side: Side,
    /// The rows, in generation order.
    pub rows: Vec<Tuple>,
}

impl RowChunk {
    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Heap bytes the chunk's rows occupy (symbols plus the per-row fat
    /// pointer) — what a bounded channel of such chunks holds resident.
    pub fn heap_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|t| std::mem::size_of::<Tuple>() + t.arity() * std::mem::size_of::<u32>())
            .sum()
    }
}

/// The static part of a two-relation instance: schemas, shared interner,
/// and the pair space Ω — everything a streaming build needs before the
/// first row exists.
#[derive(Debug, Clone)]
pub struct StreamSchema {
    interner: Arc<Interner>,
    r: Schema,
    p: Schema,
    pairs: PairSpace,
}

impl StreamSchema {
    /// Creates a schema pair over a shared interner. Fails if the attribute
    /// sets overlap (the paper assumes `attrs(R) ∩ attrs(P) = ∅`).
    pub fn new(interner: Arc<Interner>, r: Schema, p: Schema) -> Result<Self> {
        for a in r.attrs() {
            if p.attrs().contains(a) {
                return Err(RelationError::OverlappingAttributes {
                    attribute: a.clone(),
                });
            }
        }
        let pairs = PairSpace::new(r.arity(), p.arity());
        Ok(StreamSchema {
            interner,
            r,
            p,
            pairs,
        })
    }

    /// Convenience constructor from names, with a fresh interner.
    pub fn from_names(
        r_name: &str,
        r_attrs: &[&str],
        p_name: &str,
        p_attrs: &[&str],
    ) -> Result<Self> {
        Self::new(
            Arc::new(Interner::new()),
            Schema::new(r_name, r_attrs)?,
            Schema::new(p_name, p_attrs)?,
        )
    }

    /// The shared value interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// A clone of the interner handle (for generator workers).
    pub fn interner_handle(&self) -> Arc<Interner> {
        Arc::clone(&self.interner)
    }

    /// Schema of `R`.
    pub fn r(&self) -> &Schema {
        &self.r
    }

    /// Schema of `P`.
    pub fn p(&self) -> &Schema {
        &self.p
    }

    /// The schema for `side`.
    pub fn side(&self, side: Side) -> &Schema {
        match side {
            Side::R => &self.r,
            Side::P => &self.p,
        }
    }

    /// The attribute-pair space Ω.
    pub fn pairs(&self) -> PairSpace {
        self.pairs
    }

    /// Interns a row of values for `side` into a [`Tuple`], checking arity.
    pub fn intern_row(&self, side: Side, values: &[Value]) -> Result<Tuple> {
        let schema = self.side(side);
        if values.len() != schema.arity() {
            return Err(RelationError::ArityMismatch {
                relation: schema.name().to_string(),
                expected: schema.arity(),
                got: values.len(),
            });
        }
        Ok(Tuple::intern(&self.interner, values))
    }

    /// Assembles an [`Instance`] from (typically profile-representative)
    /// rows. The streaming build uses this to give the finished universe a
    /// compact instance holding one row per distinct join profile.
    pub fn into_instance(self, r_rows: Vec<Tuple>, p_rows: Vec<Tuple>) -> Result<Instance> {
        let mut r = Relation::new(self.r);
        for t in r_rows {
            r.push_tuple(t)?;
        }
        let mut p = Relation::new(self.p);
        for t in p_rows {
            p.push_tuple(t)?;
        }
        Instance::new(self.interner, r, p)
    }
}

/// The join-profile key of `row` against a set of `shared` symbols: the
/// row's symbol tuple with every symbol outside `shared` collapsed to
/// [`PROFILE_HOLE`].
///
/// Two rows with equal keys have identical signatures `T((r, p))` against
/// every opposite-side row, so a weighted map over keys loses nothing the
/// universe construction needs (see [`Instance::r_profile_key`] for the
/// argument). `shared` must be a bitset over symbol indices containing at
/// least every symbol occurring on **both** sides; symbols beyond its
/// capacity are treated as non-shared.
pub fn profile_key(row: &Tuple, shared: &BitSet) -> Box<[u32]> {
    row.symbols()
        .iter()
        .map(|sym| {
            if sym.index() < shared.capacity() && shared.contains(sym.index()) {
                sym.0
            } else {
                PROFILE_HOLE
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> StreamSchema {
        StreamSchema::from_names("R", &["A1", "A2"], "P", &["B1"]).unwrap()
    }

    #[test]
    fn overlapping_attributes_rejected() {
        let e = StreamSchema::from_names("R", &["A", "X"], "P", &["X"]).unwrap_err();
        assert!(matches!(e, RelationError::OverlappingAttributes { .. }));
    }

    #[test]
    fn intern_row_checks_arity() {
        let s = schema();
        let e = s.intern_row(Side::R, &[Value::int(1)]).unwrap_err();
        assert!(matches!(e, RelationError::ArityMismatch { .. }));
        assert!(s.intern_row(Side::P, &[Value::int(1)]).is_ok());
    }

    #[test]
    fn into_instance_round_trips() {
        let s = schema();
        let r0 = s
            .intern_row(Side::R, &[Value::int(1), Value::int(2)])
            .unwrap();
        let p0 = s.intern_row(Side::P, &[Value::int(1)]).unwrap();
        let inst = s.into_instance(vec![r0], vec![p0]).unwrap();
        assert_eq!(inst.r().len(), 1);
        assert_eq!(inst.p().len(), 1);
        assert_eq!(inst.pairs().len(), 2);
        // The shared value 1 matches on (A1, B1).
        assert!(inst.signature(0, 0).contains(inst.pair_index(0, 0)));
    }

    #[test]
    fn profile_key_holes_non_shared_symbols() {
        let s = schema();
        let row = s
            .intern_row(Side::R, &[Value::int(1), Value::int(7)])
            .unwrap();
        let mut shared = BitSet::empty(s.interner().len());
        shared.insert(row.get(0).index()); // only the first symbol is shared
        let key = profile_key(&row, &shared);
        assert_eq!(key[0], row.get(0).0);
        assert_eq!(key[1], PROFILE_HOLE);
    }

    #[test]
    fn profile_key_treats_out_of_capacity_as_holes() {
        let s = schema();
        let row = s
            .intern_row(Side::R, &[Value::int(1), Value::int(2)])
            .unwrap();
        let shared = BitSet::empty(0); // capacity 0: every symbol is a hole
        let key = profile_key(&row, &shared);
        assert!(key.iter().all(|&k| k == PROFILE_HOLE));
    }

    #[test]
    fn chunk_accounting() {
        let s = schema();
        let rows = vec![
            s.intern_row(Side::P, &[Value::int(1)]).unwrap(),
            s.intern_row(Side::P, &[Value::int(2)]).unwrap(),
        ];
        let chunk = RowChunk {
            side: Side::P,
            rows,
        };
        assert_eq!(chunk.len(), 2);
        assert!(!chunk.is_empty());
        assert!(chunk.heap_bytes() >= 2 * std::mem::size_of::<Tuple>());
        assert_eq!(chunk.side.name(), "P");
    }
}
