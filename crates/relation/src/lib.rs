//! Relational substrate for interactive join-query inference.
//!
//! This crate provides the data plumbing that the EDBT 2014 paper
//! *Interactive Inference of Join Queries* (Bonifati, Ciucanu, Staworko)
//! assumes as given: typed attribute values, schemas, relations, two-relation
//! database instances, the Cartesian product `D = R × P`, and the evaluation
//! of equijoin / semijoin predicates over an instance.
//!
//! Values are interned to dense [`Symbol`]s so that the hot operation of the
//! inference algorithms — testing equality between an `R`-attribute and a
//! `P`-attribute value — is a single integer comparison.
//!
//! # Quick tour
//!
//! ```
//! use jqi_relation::{InstanceBuilder, Value};
//!
//! let mut b = InstanceBuilder::new();
//! b.relation_r("Flight", &["From", "To", "Airline"]);
//! b.relation_p("Hotel", &["City", "Discount"]);
//! b.row_r(&[Value::str("Paris"), Value::str("Lille"), Value::str("AF")]);
//! b.row_p(&[Value::str("Lille"), Value::str("AF")]);
//! let inst = b.build().unwrap();
//! assert_eq!(inst.product_size(), 1);
//! // (To = City) and (Airline = Discount) hold for the single pair:
//! let sig = inst.signature(0, 0);
//! assert!(sig.contains(inst.pair_index(1, 0)));
//! assert!(sig.contains(inst.pair_index(2, 1)));
//! assert!(!sig.contains(inst.pair_index(0, 0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod csv;
pub mod error;
pub mod instance;
pub mod interner;
pub mod relation;
pub mod schema;
pub mod stream;
pub mod tuple;
pub mod value;

pub use bitset::BitSet;
pub use error::{RelationError, Result};
pub use instance::{Instance, InstanceBuilder, PairSpace};
pub use interner::{Interner, Symbol};
pub use relation::{Relation, RelationBuilder};
pub use schema::Schema;
pub use stream::{RowChunk, Side, StreamSchema};
pub use tuple::Tuple;
pub use value::Value;
