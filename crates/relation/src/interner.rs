//! Value interning.
//!
//! Every distinct [`Value`] appearing in an instance is assigned a dense
//! [`Symbol`] (a `u32`). Tuples store symbols, so the equality tests at the
//! heart of `T(t)` computation are single integer comparisons, and per-row
//! value indexes can use symbols as compact keys.

use std::collections::HashMap;
use std::fmt;

use parking_lot::RwLock;

use crate::value::Value;

/// A dense identifier for an interned [`Value`].
///
/// Symbols are only meaningful relative to the [`Interner`] that produced
/// them; two symbols from the same interner are equal iff their values are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A thread-safe value interner.
///
/// Interning is append-only: symbols are never invalidated. The interner is
/// shared by both relations of an [`crate::Instance`] so that equal values in
/// `R` and `P` receive the same symbol.
#[derive(Debug, Default)]
pub struct Interner {
    inner: RwLock<InternerInner>,
}

#[derive(Debug, Default)]
struct InternerInner {
    map: HashMap<Value, Symbol>,
    values: Vec<Value>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `value`, returning its symbol. Idempotent.
    pub fn intern(&self, value: &Value) -> Symbol {
        if let Some(&sym) = self.inner.read().map.get(value) {
            return sym;
        }
        let mut inner = self.inner.write();
        if let Some(&sym) = inner.map.get(value) {
            return sym;
        }
        let sym = Symbol(
            u32::try_from(inner.values.len()).expect("interner overflow: >4e9 distinct values"),
        );
        inner.values.push(value.clone());
        inner.map.insert(value.clone(), sym);
        sym
    }

    /// Looks up a value without interning it.
    pub fn get(&self, value: &Value) -> Option<Symbol> {
        self.inner.read().map.get(value).copied()
    }

    /// Resolves a symbol back to its value. Panics on foreign symbols.
    pub fn resolve(&self, sym: Symbol) -> Value {
        self.inner.read().values[sym.index()].clone()
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().values.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let it = Interner::new();
        let a = it.intern(&Value::str("NYC"));
        let b = it.intern(&Value::str("NYC"));
        assert_eq!(a, b);
        assert_eq!(it.len(), 1);
    }

    #[test]
    fn distinct_values_get_distinct_symbols() {
        let it = Interner::new();
        let a = it.intern(&Value::int(15));
        let b = it.intern(&Value::str("15"));
        assert_ne!(a, b, "typed equality must survive interning");
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let it = Interner::new();
        let v = Value::str("Paris");
        let s = it.intern(&v);
        assert_eq!(it.resolve(s), v);
    }

    #[test]
    fn get_does_not_intern() {
        let it = Interner::new();
        assert_eq!(it.get(&Value::int(1)), None);
        assert!(it.is_empty());
        let s = it.intern(&Value::int(1));
        assert_eq!(it.get(&Value::int(1)), Some(s));
    }

    #[test]
    fn symbols_are_dense() {
        let it = Interner::new();
        for i in 0..100 {
            let s = it.intern(&Value::int(i));
            assert_eq!(s.index(), i as usize);
        }
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        use std::sync::Arc;
        let it = Arc::new(Interner::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let it = Arc::clone(&it);
                std::thread::spawn(move || {
                    (0..256)
                        .map(|i| it.intern(&Value::int(i % 32)).0)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(it.len(), 32);
        // All threads must agree on every symbol.
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
