//! Relation schemas.

use crate::error::{RelationError, Result};
use std::fmt;

/// A relation schema: a name and an ordered list of attribute names.
///
/// The paper works with `attrs(R) = {A1, …, An}` and `attrs(P) = {B1, …, Bm}`;
/// attributes are addressed by position internally and by name at the API
/// surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    attrs: Vec<String>,
}

impl Schema {
    /// Creates a schema, rejecting duplicate attribute names.
    pub fn new(name: impl Into<String>, attrs: &[&str]) -> Result<Self> {
        let name = name.into();
        let attrs: Vec<String> = attrs.iter().map(|s| s.to_string()).collect();
        for (i, a) in attrs.iter().enumerate() {
            if attrs[..i].contains(a) {
                return Err(RelationError::DuplicateAttribute {
                    relation: name,
                    attribute: a.clone(),
                });
            }
        }
        Ok(Schema { name, attrs })
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes (the arity).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Attribute names in declaration order.
    pub fn attrs(&self) -> &[String] {
        &self.attrs
    }

    /// The name of attribute `i`. Panics if out of range.
    pub fn attr_name(&self, i: usize) -> &str {
        &self.attrs[i]
    }

    /// Resolves an attribute name to its position.
    pub fn attr_index(&self, name: &str) -> Result<usize> {
        self.attrs
            .iter()
            .position(|a| a == name)
            .ok_or_else(|| RelationError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: name.to_string(),
            })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.attrs.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let s = Schema::new("Flight", &["From", "To", "Airline"]).unwrap();
        assert_eq!(s.name(), "Flight");
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr_name(1), "To");
        assert_eq!(s.attr_index("Airline").unwrap(), 2);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let e = Schema::new("R", &["A", "B", "A"]).unwrap_err();
        assert!(matches!(e, RelationError::DuplicateAttribute { .. }));
    }

    #[test]
    fn unknown_attribute() {
        let s = Schema::new("R", &["A"]).unwrap();
        let e = s.attr_index("Z").unwrap_err();
        assert!(matches!(e, RelationError::UnknownAttribute { .. }));
    }

    #[test]
    fn display() {
        let s = Schema::new("Hotel", &["City", "Discount"]).unwrap();
        assert_eq!(s.to_string(), "Hotel(City, Discount)");
    }

    #[test]
    fn empty_schema_is_allowed() {
        let s = Schema::new("E", &[]).unwrap();
        assert_eq!(s.arity(), 0);
    }
}
