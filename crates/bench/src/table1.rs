//! Table 1: the per-dataset summary — Cartesian-product size, join ratio,
//! best strategy w.r.t. interactions, and the best strategy's time.

use crate::fig6::{self, Fig6Report};
use crate::fig7::{self, Fig7Params, Fig7Report};
use crate::json::{Json, ToJson};
use crate::measure::fmt_seconds;
use crate::report::{fmt_scientific, TextTable};
use jqi_datagen::tpch::TpchScale;
use jqi_datagen::PAPER_CONFIGS;

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset group ("TPC-H SF=…" or a synthetic configuration).
    pub dataset: String,
    /// Workload within the group ("Join 1 (size 1)" or "Joins of size k").
    pub workload: String,
    /// `|D|`.
    pub product_size: u64,
    /// Join ratio.
    pub join_ratio: f64,
    /// Best strategy name(s) and its interaction count.
    pub best: String,
    /// Time of the best strategy, seconds.
    pub best_seconds: f64,
}

/// The assembled Table 1.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// All rows, TPC-H first, then synthetic, as in the paper.
    pub rows: Vec<Table1Row>,
}

fn tpch_rows(report: &Fig6Report) -> Vec<Table1Row> {
    report
        .rows
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let best = report.best_strategy(i);
            // List every strategy tied at the minimum, as the paper does
            // ("BU/TD/L2S (2 int.)").
            let names: Vec<&str> = row
                .strategies
                .iter()
                .filter(|m| m.interactions == best.interactions)
                .map(|m| m.strategy.as_str())
                .collect();
            Table1Row {
                dataset: format!("TPC-H {}", report.scale),
                workload: format!("{} (size {})", row.join, row.goal_size),
                product_size: row.product_size,
                join_ratio: row.join_ratio,
                best: format!("{} ({} int.)", names.join("/"), best.interactions),
                best_seconds: best.seconds,
            }
        })
        .collect()
}

fn synthetic_rows(report: &Fig7Report) -> Vec<Table1Row> {
    report
        .rows
        .iter()
        .map(|row| {
            let best = row
                .strategies
                .iter()
                .min_by(|a, b| {
                    a.mean_interactions
                        .partial_cmp(&b.mean_interactions)
                        .expect("finite means")
                })
                .expect("strategies measured");
            let names: Vec<&str> = row
                .strategies
                .iter()
                .filter(|a| a.mean_interactions == best.mean_interactions)
                .map(|a| a.strategy.as_str())
                .collect();
            Table1Row {
                dataset: report.config.clone(),
                workload: format!("Joins of size {}", row.goal_size),
                product_size: report.product_size,
                join_ratio: report.join_ratio,
                best: format!("{} ({:.1} int.)", names.join("/"), best.mean_interactions),
                best_seconds: best.mean_seconds,
            }
        })
        .collect()
}

/// Builds the full Table 1: both TPC-H scales plus the six synthetic
/// configurations.
pub fn run(seed: u64, fig7_params: Fig7Params) -> Table1 {
    let mut rows = Vec::new();
    for scale in TpchScale::ALL {
        rows.extend(tpch_rows(&fig6::run(scale, seed)));
    }
    for cfg in PAPER_CONFIGS {
        rows.extend(synthetic_rows(&fig7::run(cfg, fig7_params)));
    }
    Table1 { rows }
}

impl ToJson for Table1Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("dataset".into(), Json::str(&self.dataset)),
            ("workload".into(), Json::str(&self.workload)),
            ("product_size".into(), Json::Num(self.product_size as f64)),
            ("join_ratio".into(), Json::Num(self.join_ratio)),
            ("best".into(), Json::str(&self.best)),
            ("best_seconds".into(), Json::Num(self.best_seconds)),
        ])
    }
}

impl ToJson for Table1 {
    fn to_json(&self) -> Json {
        Json::Obj(vec![("rows".into(), Json::arr(&self.rows))])
    }
}

impl Table1 {
    /// Renders the summary as text.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&[
            "dataset",
            "workload",
            "|D|",
            "join ratio",
            "best strategy",
            "time (s)",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.dataset.clone(),
                r.workload.clone(),
                fmt_scientific(r.product_size),
                format!("{:.3}", r.join_ratio),
                r.best.clone(),
                fmt_seconds(r.best_seconds),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_datagen::SyntheticConfig;

    #[test]
    fn tpch_rows_cover_all_joins() {
        let report = fig6::run(TpchScale::Small, 1);
        let rows = tpch_rows(&report);
        assert_eq!(rows.len(), 5);
        assert!(rows[0].workload.contains("Join 1"));
        assert!(rows[4].workload.contains("size 2"));
        for r in &rows {
            assert!(r.best.contains("int."));
            assert!(r.join_ratio >= 1.0 || r.join_ratio == 0.0 || r.join_ratio < 1.0);
        }
    }

    #[test]
    fn synthetic_rows_report_best_strategy() {
        let cfg = SyntheticConfig::new(2, 2, 10, 5);
        let report = fig7::run(
            cfg,
            Fig7Params {
                runs: 2,
                max_goals_per_size: 2,
                seed: 3,
            },
        );
        let rows = synthetic_rows(&report);
        assert!(!rows.is_empty());
        // The ∅ goal is solved in 1 interaction; BU must be among the best.
        assert!(rows[0].best.contains("BU"), "got {}", rows[0].best);
    }
}
