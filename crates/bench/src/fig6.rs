//! Figure 6: TPC-H experiments — interactions (6a/6b) and inference time
//! (6c/6d) for the five goal joins at two scales.

use crate::json::{Json, ToJson};
use crate::measure::{fmt_seconds, run_timed, Measurement};
use crate::report::TextTable;
use jqi_core::strategy::StrategyKind;
use jqi_core::universe::Universe;
use jqi_datagen::tpch::{TpchJoin, TpchScale, TpchTables};

/// One row of the Figure 6 report: all strategies on one join.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Which join (1–5).
    pub join: String,
    /// `|θG|`.
    pub goal_size: usize,
    /// `|D|` of the workload instance.
    pub product_size: u64,
    /// Join ratio of the instance (Table 1's complexity measure).
    pub join_ratio: f64,
    /// Per-strategy measurements, in [`StrategyKind::PAPER`] order.
    pub strategies: Vec<Measurement>,
}

/// The full Figure 6 experiment at one scale.
#[derive(Debug, Clone)]
pub struct Fig6Report {
    /// Which scale this was run at.
    pub scale: String,
    /// One row per join.
    pub rows: Vec<Fig6Row>,
}

/// Runs the five TPC-H joins at `scale` with every paper strategy.
pub fn run(scale: TpchScale, seed: u64) -> Fig6Report {
    let tables = TpchTables::generate(scale, seed);
    let mut rows = Vec::new();
    for join in TpchJoin::ALL {
        let w = tables.workload(join);
        let universe = Universe::build(w.instance.clone());
        let strategies: Vec<Measurement> = StrategyKind::PAPER
            .iter()
            .map(|&kind| run_timed(&universe, kind, &w.goal, seed))
            .collect();
        rows.push(Fig6Row {
            join: join.name().to_string(),
            goal_size: join.goal_size(),
            product_size: universe.total_tuples(),
            join_ratio: jqi_core::lattice::join_ratio(&universe),
            strategies,
        });
    }
    Fig6Report {
        scale: scale.name().to_string(),
        rows,
    }
}

impl ToJson for Fig6Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("join".into(), Json::str(&self.join)),
            ("goal_size".into(), Json::Num(self.goal_size as f64)),
            ("product_size".into(), Json::Num(self.product_size as f64)),
            ("join_ratio".into(), Json::Num(self.join_ratio)),
            ("strategies".into(), Json::arr(&self.strategies)),
        ])
    }
}

impl ToJson for Fig6Report {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scale".into(), Json::str(&self.scale)),
            ("rows".into(), Json::arr(&self.rows)),
        ])
    }
}

impl Fig6Report {
    /// Figure 6a/6b: the number-of-interactions table.
    pub fn interactions_table(&self) -> TextTable {
        let mut header = vec!["join"];
        let names: Vec<&str> = StrategyKind::PAPER.iter().map(|k| k.name()).collect();
        header.extend(names.iter());
        let mut t = TextTable::new(&header);
        for row in &self.rows {
            let mut cells = vec![row.join.clone()];
            cells.extend(row.strategies.iter().map(|m| m.interactions.to_string()));
            t.row(cells);
        }
        t
    }

    /// Figure 6c/6d: the inference-time table (seconds).
    pub fn time_table(&self) -> TextTable {
        let mut header = vec!["join"];
        let names: Vec<&str> = StrategyKind::PAPER.iter().map(|k| k.name()).collect();
        header.extend(names.iter());
        let mut t = TextTable::new(&header);
        for row in &self.rows {
            let mut cells = vec![row.join.clone()];
            cells.extend(row.strategies.iter().map(|m| fmt_seconds(m.seconds)));
            t.row(cells);
        }
        t
    }

    /// The strategy with the fewest interactions on `join` (ties toward the
    /// paper's listing order).
    pub fn best_strategy(&self, join_index: usize) -> &Measurement {
        self.rows[join_index]
            .strategies
            .iter()
            .min_by_key(|m| m.interactions)
            .expect("five strategies measured")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_five_joins_and_five_strategies() {
        let r = run(TpchScale::Small, 1);
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            assert_eq!(row.strategies.len(), 5);
            assert!(row.strategies.iter().all(|m| m.interactions >= 1));
        }
        assert_eq!(r.interactions_table().len(), 5);
        assert_eq!(r.time_table().len(), 5);
    }

    #[test]
    fn key_joins_are_inferred_with_few_interactions() {
        // The paper's headline shape: size-1 key joins need only a handful
        // of interactions for the best strategy (2–4 in Figure 6).
        let r = run(TpchScale::Small, 2);
        for (i, row) in r.rows.iter().enumerate() {
            let best = r.best_strategy(i);
            if row.goal_size == 1 {
                assert!(
                    best.interactions <= 12,
                    "{}: best strategy needed {} interactions",
                    row.join,
                    best.interactions
                );
            }
        }
    }

    #[test]
    fn join5_needs_more_interactions_than_join1() {
        // Figure 6: the size-2 Join 5 is consistently harder than the
        // size-1 Join 1 for the best strategy.
        let r = run(TpchScale::Small, 3);
        let b1 = r.best_strategy(0).interactions;
        let b5 = r.best_strategy(4).interactions;
        assert!(
            b5 >= b1,
            "Join 5 ({b5}) should need at least as many interactions as Join 1 ({b1})"
        );
    }
}
