//! CI guard: every relative link in the repo's markdown must resolve.
//!
//! ```text
//! linkcheck [ROOT]
//! ```
//!
//! Walks `ROOT` (default `.`) for `*.md` files — skipping `target/`,
//! `.git/`, and anything else that starts with a dot — extracts inline
//! `[text](destination)` links plus reference definitions
//! (`[label]: destination`), and checks that every *relative*
//! destination exists on disk, resolved against the linking file's
//! directory. External schemes (`http:`, `https:`, `mailto:`) and
//! pure in-page anchors (`#…`) are skipped; a `path#anchor` suffix is
//! stripped before the existence check. Exits nonzero listing every
//! broken link, so docs can't drift from the tree they describe.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn markdown_files(root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(root)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            markdown_files(&path, out)?;
        } else if name.to_ascii_lowercase().ends_with(".md") {
            out.push(path);
        }
    }
    Ok(())
}

/// Extracts link destinations from one markdown document: inline
/// `[text](dest)` (tolerating one level of nested brackets in the text,
/// e.g. image-in-link) and reference definitions `[label]: dest` at
/// line starts. Fenced code blocks are skipped — schemas and shell
/// examples are full of `[...]` that are not links.
fn destinations(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") || trimmed.starts_with("~~~") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        // Reference definition: [label]: destination
        if let Some(rest) = trimmed.strip_prefix('[') {
            if let Some(close) = rest.find(']') {
                if let Some(dest) = rest[close + 1..].strip_prefix(':') {
                    let dest = dest.trim();
                    if !dest.is_empty() {
                        out.push(dest.split_whitespace().next().unwrap().to_string());
                        continue;
                    }
                }
            }
        }
        // Inline links: scan for ](dest), then walk brackets back.
        let bytes = line.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < bytes.len() && depth > 0 {
                    match bytes[j] {
                        b'(' => depth += 1,
                        b')' => depth -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                if depth == 0 {
                    let dest = line[start..j - 1].trim();
                    // `[x](dest "title")` — the destination is the
                    // first whitespace-delimited token.
                    if let Some(first) = dest.split_whitespace().next() {
                        out.push(first.to_string());
                    }
                    i = j;
                    continue;
                }
            }
            i += 1;
        }
    }
    out
}

/// `true` when the destination is out of scope for a filesystem check.
fn is_external(dest: &str) -> bool {
    dest.starts_with('#')
        || dest.contains("://")
        || dest.starts_with("mailto:")
        || dest.starts_with("data:")
}

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    let mut files = Vec::new();
    if let Err(e) = markdown_files(&root, &mut files) {
        eprintln!("linkcheck: cannot walk {}: {e}", root.display());
        return ExitCode::FAILURE;
    }
    files.sort();
    let mut broken: Vec<String> = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                broken.push(format!("{}: unreadable: {e}", file.display()));
                continue;
            }
        };
        let dir = file.parent().unwrap_or(Path::new("."));
        for dest in destinations(&text) {
            if is_external(&dest) {
                continue;
            }
            let path_part = dest.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            checked += 1;
            let target = if let Some(abs) = path_part.strip_prefix('/') {
                root.join(abs)
            } else {
                dir.join(path_part)
            };
            if !target.exists() {
                broken.push(format!(
                    "{}: broken link {dest:?} (resolved to {})",
                    file.display(),
                    target.display()
                ));
            }
        }
    }
    if broken.is_empty() {
        println!(
            "linkcheck: {checked} relative links across {} markdown files all resolve",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("linkcheck: {} broken link(s):", broken.len());
        for b in &broken {
            eprintln!("  {b}");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_inline_and_reference_links_and_skips_fences() {
        let md = "\
see [docs](docs/API.md) and [ext](https://example.com) plus [a](#x)\n\
[ref]: ../other.md\n\
```\n\
not a [link](inside/fence.md)\n\
```\n\
[titled](path/to.md \"title\")\n";
        let d = destinations(md);
        assert_eq!(
            d,
            vec![
                "docs/API.md",
                "https://example.com",
                "#x",
                "../other.md",
                "path/to.md"
            ]
        );
        assert!(is_external("https://example.com"));
        assert!(is_external("#x"));
        assert!(!is_external("docs/API.md"));
    }
}
