//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! paper_experiments [fig6|fig7|table1|semijoin|opt|all] [--runs N] [--goals N]
//!                   [--seed S] [--json]
//! ```
//!
//! * `fig6` — TPC-H Joins 1–5 at both scales: interactions (Figures 6a/6b)
//!   and inference time (Figures 6c/6d).
//! * `fig7` — the six synthetic configurations grouped by `|θG|`
//!   (Figures 7a–7l).
//! * `table1` — the summary table (Table 1).
//! * `semijoin` — the §6 cross-validation sweep (CONS⋉ vs DPLL).
//! * `opt` — worst-case gap of the heuristics vs the minimax optimum.
//! * `all` — everything, in paper order.

use jqi_bench::fig7::Fig7Params;
use jqi_bench::json::ToJson;
use jqi_bench::{fig6, fig7, optgap, semijoin_exp, table1};
use jqi_datagen::tpch::TpchScale;
use jqi_datagen::PAPER_CONFIGS;
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Args {
    command: String,
    runs: usize,
    goals: usize,
    seed: u64,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        command: "all".to_string(),
        runs: 5,
        goals: 8,
        seed: 0xC0FFEE,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    let mut saw_command = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "fig6" | "fig7" | "table1" | "semijoin" | "opt" | "all" => {
                if saw_command {
                    return Err("multiple commands given".to_string());
                }
                args.command = a;
                saw_command = true;
            }
            "--runs" => {
                args.runs = it
                    .next()
                    .ok_or("--runs needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --runs: {e}"))?;
            }
            "--goals" => {
                args.goals = it
                    .next()
                    .ok_or("--goals needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --goals: {e}"))?;
            }
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--json" => args.json = true,
            "--help" | "-h" => {
                return Err(
                    "usage: paper_experiments [fig6|fig7|table1|semijoin|opt|all] \
                            [--runs N] [--goals N] [--seed S] [--json]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn fig7_params(args: &Args) -> Fig7Params {
    Fig7Params {
        runs: args.runs,
        max_goals_per_size: args.goals,
        seed: args.seed,
    }
}

fn run_fig6(args: &Args) {
    for scale in TpchScale::ALL {
        let report = fig6::run(scale, args.seed);
        if args.json {
            println!("{}", report.to_json().to_string_pretty());
            continue;
        }
        println!("== Figure 6 — TPC-H {scale}: number of interactions ==");
        print!("{}", report.interactions_table());
        println!();
        println!("== Figure 6 — TPC-H {scale}: inference time (seconds) ==");
        print!("{}", report.time_table());
        println!();
    }
}

fn run_fig7(args: &Args) {
    for cfg in PAPER_CONFIGS {
        let report = fig7::run(cfg, fig7_params(args));
        if args.json {
            println!("{}", report.to_json().to_string_pretty());
            continue;
        }
        println!(
            "== Figure 7 — synthetic {}: number of interactions (mean of {} runs) ==",
            report.config, args.runs
        );
        print!("{}", report.interactions_table());
        println!();
        println!(
            "== Figure 7 — synthetic {}: inference time (seconds) ==",
            report.config
        );
        print!("{}", report.time_table());
        println!();
    }
}

fn run_table1(args: &Args) {
    let t = table1::run(args.seed, fig7_params(args));
    if args.json {
        println!("{}", t.to_json().to_string_pretty());
        return;
    }
    println!("== Table 1 — description and summary of all experiments ==");
    print!("{}", t.table());
    println!();
}

fn run_semijoin(args: &Args) {
    let report = semijoin_exp::run(&[4, 5, 6, 7, 8], args.runs.max(3), args.seed);
    if args.json {
        println!("{}", report.to_json().to_string_pretty());
        return;
    }
    println!("== §6 / Theorem 6.1 — CONS⋉ solver vs DPLL on random 3SAT ==");
    print!("{}", report.table());
    println!(
        "cross-validation: {}",
        if report.all_agree() {
            "all decisions agree"
        } else {
            "DISAGREEMENT FOUND"
        }
    );
    println!();
}

fn run_optgap(args: &Args) {
    let report = optgap::run();
    if args.json {
        println!("{}", report.to_json().to_string_pretty());
        return;
    }
    println!("== Optimal gap — heuristic worst cases vs the minimax bound ==");
    print!("{}", report.table());
    println!();
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match args.command.as_str() {
        "fig6" => run_fig6(&args),
        "fig7" => run_fig7(&args),
        "table1" => run_table1(&args),
        "semijoin" => run_semijoin(&args),
        "opt" => run_optgap(&args),
        "all" => {
            run_fig6(&args);
            run_fig7(&args);
            run_table1(&args);
            run_semijoin(&args);
            run_optgap(&args);
        }
        _ => unreachable!("validated by parse_args"),
    }
    ExitCode::SUCCESS
}
