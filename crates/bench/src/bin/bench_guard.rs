//! CI regression guard over the bench JSON reports.
//!
//! ```text
//! bench_guard --kind server|scaling --fresh PATH --baseline PATH [--factor F]
//! ```
//!
//! Compares a freshly generated (tiny, CI-sized) bench report against the
//! committed baseline under `ci/` and exits nonzero when a guarded metric
//! regressed by more than `--factor` (default 3 — CI runners vary wildly,
//! so the guard only catches order-of-magnitude regressions, not noise):
//!
//! * `--kind server` — the interactive phase's per-answer `mean_us`, the
//!   batch phase's `mean_us`, per-session derived-state bytes
//!   (`state_bytes_per_session`, a hard factor on memory, not latency),
//!   the fleet phase's warm and cold first-question `mean_us` plus the
//!   warm-over-cold speedup (`warm_speedup` must not shrink below
//!   `baseline / factor`), the hibernation tier's parked-session
//!   resident bytes (`hibernated_bytes_per_session`), and the durability
//!   tier: group-commit per-answer `mean_us` vs the baseline,
//!   `overhead_group_x` (the in-memory/WAL-on throughput ratio) against
//!   an **absolute** ceiling of `factor` (WAL-on interactive throughput
//!   must stay within 3x of in-memory on any machine), and recovery
//!   `sessions_per_sec` as a floor. When the baseline carries a
//!   `transport` block (PR 8+), the HTTP request `mean_us` is guarded
//!   like the other latencies, `open_connections_peak` must not shrink,
//!   and `protocol_errors` must be zero. When it carries an `overload`
//!   block (PR 9+), shed `mean_us` and the accepted `p99_ratio` are
//!   held `at_most`, `goodput_per_sec` must not shrink, and `wedged` /
//!   `protocol_errors` / `client_errors` must be zero at any factor.
//! * `--kind scaling` — per dataset point matched **by name**,
//!   `build_speedup` must not shrink below `baseline / factor` and
//!   `l1s_first_step_ms` / `l3s_first_step_ms` must not exceed
//!   `baseline · factor`; per `streaming` phase point (also matched by
//!   name), `build_wall_ms` and `peak_tracked_bytes` must not exceed
//!   `baseline · factor`; per `incremental` phase point (also matched by
//!   name), `delta_apply_ms` must not exceed `baseline · factor` and the
//!   rebuild-over-apply `speedup` must not shrink below
//!   `baseline / factor`. Points present on only one side are skipped
//!   (sweeps may grow, and baselines older than a phase lack its block),
//!   but zero matched points is an error.

use jqi_server::json::Json;
use std::process::ExitCode;

struct Args {
    kind: String,
    fresh: String,
    baseline: String,
    factor: f64,
}

const USAGE: &str =
    "usage: bench_guard --kind server|scaling --fresh PATH --baseline PATH [--factor F]";

fn parse_args() -> Result<Args, String> {
    let (mut kind, mut fresh, mut baseline) = (None, None, None);
    let mut factor = 3.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--kind" => kind = Some(value("--kind")?),
            "--fresh" => fresh = Some(value("--fresh")?),
            "--baseline" => baseline = Some(value("--baseline")?),
            "--factor" => {
                factor = value("--factor")?
                    .parse()
                    .map_err(|e| format!("bad --factor: {e}"))?;
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Args {
        kind: kind.ok_or("--kind is required")?,
        fresh: fresh.ok_or("--fresh is required")?,
        baseline: baseline.ok_or("--baseline is required")?,
        factor,
    })
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

/// Collects guard violations instead of failing fast, so one CI run shows
/// every regressed metric.
struct Guard {
    factor: f64,
    violations: Vec<String>,
    checked: usize,
}

impl Guard {
    fn new(factor: f64) -> Guard {
        Guard {
            factor,
            violations: Vec::new(),
            checked: 0,
        }
    }

    /// `fresh` must not exceed `baseline · factor` (latency-style metric).
    fn at_most(&mut self, what: &str, fresh: f64, baseline: f64) {
        self.checked += 1;
        if fresh > baseline * self.factor {
            self.violations.push(format!(
                "{what}: {fresh:.3} exceeds {:.3} ({baseline:.3} × {})",
                baseline * self.factor,
                self.factor
            ));
        }
    }

    /// `fresh` must not fall below `baseline / factor` (speedup metric).
    fn at_least(&mut self, what: &str, fresh: f64, baseline: f64) {
        self.checked += 1;
        if fresh < baseline / self.factor {
            self.violations.push(format!(
                "{what}: {fresh:.3} falls below {:.3} ({baseline:.3} / {})",
                baseline / self.factor,
                self.factor
            ));
        }
    }
}

fn num(doc: &Json, path: &[&str]) -> Option<f64> {
    let mut cur = doc;
    for key in path {
        cur = cur.get(key)?;
    }
    cur.as_num()
}

fn phase<'j>(doc: &'j Json, name: &str) -> Option<&'j Json> {
    doc.get("phases")?
        .as_arr()?
        .iter()
        .find(|p| p.get("phase").and_then(Json::as_str) == Some(name))
}

fn guard_server(guard: &mut Guard, fresh: &Json, baseline: &Json) -> Result<(), String> {
    for name in ["interactive", "batch"] {
        let f = phase(fresh, name)
            .and_then(|p| num(p, &["latency", "mean_us"]))
            .ok_or(format!("fresh report lacks {name} mean_us"))?;
        let b = phase(baseline, name)
            .and_then(|p| num(p, &["latency", "mean_us"]))
            .ok_or(format!("baseline lacks {name} mean_us"))?;
        guard.at_most(&format!("{name} mean_us"), f, b);
    }
    let f = num(fresh, &["session_memory", "state_bytes_per_session"])
        .ok_or("fresh report lacks state_bytes_per_session")?;
    let b = num(baseline, &["session_memory", "state_bytes_per_session"])
        .ok_or("baseline lacks state_bytes_per_session")?;
    // Memory is machine-independent: a tight factor would also be fine,
    // but share the guard's knob for simplicity.
    guard.at_most("state_bytes_per_session", f, b);
    // Fleet phase: cold and warm first-question latencies individually,
    // and the warm-over-cold speedup (the decision cache's headline
    // number) as a floor.
    for (leaf, what) in [
        ("cold_first_question", "fleet cold first-question mean_us"),
        ("warm_first_question", "fleet warm first-question mean_us"),
    ] {
        let f = num(fresh, &["fleet", leaf, "mean_us"])
            .ok_or(format!("fresh report lacks fleet {leaf}"))?;
        let b = num(baseline, &["fleet", leaf, "mean_us"])
            .ok_or(format!("baseline lacks fleet {leaf}"))?;
        guard.at_most(what, f, b);
    }
    let f = num(fresh, &["fleet", "warm_speedup"]).ok_or("fresh report lacks warm_speedup")?;
    let b = num(baseline, &["fleet", "warm_speedup"]).ok_or("baseline lacks warm_speedup")?;
    guard.at_least("fleet warm_speedup", f, b);
    // Hibernation tier: parked-session resident bytes are
    // machine-independent like the state bytes above.
    let f = num(fresh, &["hibernate", "hibernated_bytes_per_session"])
        .ok_or("fresh report lacks hibernated_bytes_per_session")?;
    let b = num(baseline, &["hibernate", "hibernated_bytes_per_session"])
        .ok_or("baseline lacks hibernated_bytes_per_session")?;
    guard.at_most("hibernated_bytes_per_session", f, b);
    // Durability tier: group-commit answer latency against the baseline,
    // the WAL-on/in-memory ratio against an absolute ceiling (the
    // acceptance bar: group commit must stay within 3x of in-memory on
    // any machine), and recovery throughput as a floor.
    let f = num(fresh, &["durability", "wal_group", "latency", "mean_us"])
        .ok_or("fresh report lacks durability wal_group mean_us")?;
    let b = num(baseline, &["durability", "wal_group", "latency", "mean_us"])
        .ok_or("baseline lacks durability wal_group mean_us")?;
    guard.at_most("durability wal_group mean_us", f, b);
    let f = num(fresh, &["durability", "overhead_group_x"])
        .ok_or("fresh report lacks durability overhead_group_x")?;
    // Baseline 1.0: the guard's factor itself becomes the absolute bound.
    guard.at_most("durability overhead_group_x (vs in-memory)", f, 1.0);
    let f = num(fresh, &["durability", "recovery", "sessions_per_sec"])
        .ok_or("fresh report lacks recovery sessions_per_sec")?;
    let b = num(baseline, &["durability", "recovery", "sessions_per_sec"])
        .ok_or("baseline lacks recovery sessions_per_sec")?;
    guard.at_least("durability recovery sessions_per_sec", f, b);
    // Transport phase: guarded only when the committed baseline carries
    // it (older baselines predate the HTTP gateway — the skip-if-absent
    // posture the scaling guard uses for grown sweeps). The fresh report
    // must carry it once the baseline does.
    if baseline.get("transport").is_some() {
        let f = num(fresh, &["transport", "request_latency", "mean_us"])
            .ok_or("fresh report lacks transport request mean_us")?;
        let b = num(baseline, &["transport", "request_latency", "mean_us"])
            .ok_or("baseline lacks transport request mean_us")?;
        guard.at_most("transport request mean_us", f, b);
        // Concurrency coverage is machine-independent: the fresh run must
        // hold open at least as many connections as the baseline did.
        let f = num(fresh, &["transport", "open_connections_peak"])
            .ok_or("fresh report lacks transport open_connections_peak")?;
        let b = num(baseline, &["transport", "open_connections_peak"])
            .ok_or("baseline lacks transport open_connections_peak")?;
        if f < b {
            guard.violations.push(format!(
                "transport open_connections_peak: {f:.0} below baseline {b:.0} \
                 (concurrency coverage must not shrink)"
            ));
        }
        guard.checked += 1;
        // The wire must be clean: any protocol error in the fresh run is
        // a regression regardless of factor.
        let f = num(fresh, &["transport", "protocol_errors"])
            .ok_or("fresh report lacks transport protocol_errors")?;
        if f > 0.0 {
            guard
                .violations
                .push(format!("transport protocol_errors: {f:.0} (must be 0)"));
        }
        guard.checked += 1;
    }
    // Overload phase: guarded only when the baseline carries it (older
    // baselines predate the load shedder). Shed responses must stay
    // fast, goodput under overload must not shrink, the accepted-p99
    // blow-up over the uncontended baseline is held like a latency, and
    // the absolute invariants — nothing wedged, no protocol or client
    // errors — are regressions at any count.
    if baseline.get("overload").is_some() {
        let f = num(fresh, &["overload", "shed_latency", "mean_us"])
            .ok_or("fresh report lacks overload shed mean_us")?;
        let b = num(baseline, &["overload", "shed_latency", "mean_us"])
            .ok_or("baseline lacks overload shed mean_us")?;
        guard.at_most("overload shed mean_us", f, b);
        let f = num(fresh, &["overload", "goodput_per_sec"])
            .ok_or("fresh report lacks overload goodput_per_sec")?;
        let b = num(baseline, &["overload", "goodput_per_sec"])
            .ok_or("baseline lacks overload goodput_per_sec")?;
        guard.at_least("overload goodput_per_sec", f, b);
        let f = num(fresh, &["overload", "p99_ratio"])
            .ok_or("fresh report lacks overload p99_ratio")?;
        let b =
            num(baseline, &["overload", "p99_ratio"]).ok_or("baseline lacks overload p99_ratio")?;
        guard.at_most("overload p99_ratio", f, b);
        for must_be_zero in ["wedged", "protocol_errors", "client_errors"] {
            let f = num(fresh, &["overload", must_be_zero])
                .ok_or(format!("fresh report lacks overload {must_be_zero}"))?;
            if f > 0.0 {
                guard
                    .violations
                    .push(format!("overload {must_be_zero}: {f:.0} (must be 0)"));
            }
            guard.checked += 1;
        }
    }
    Ok(())
}

fn guard_scaling(guard: &mut Guard, fresh: &Json, baseline: &Json) -> Result<(), String> {
    let points = |doc: &Json| -> Option<Vec<Json>> {
        doc.get("points")
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
    };
    let fresh_points = points(fresh).ok_or("fresh report lacks points")?;
    let baseline_points = points(baseline).ok_or("baseline lacks points")?;
    let mut matched = 0usize;
    for fp in &fresh_points {
        let Some(name) = fp.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(bp) = baseline_points
            .iter()
            .find(|p| p.get("name").and_then(Json::as_str) == Some(name))
        else {
            continue;
        };
        matched += 1;
        if let (Some(f), Some(b)) = (num(fp, &["build_speedup"]), num(bp, &["build_speedup"])) {
            guard.at_least(&format!("{name}: build_speedup"), f, b);
        }
        for metric in ["l1s_first_step_ms", "l3s_first_step_ms"] {
            if let (Some(f), Some(b)) = (num(fp, &[metric]), num(bp, &[metric])) {
                guard.at_most(&format!("{name}: {metric}"), f, b);
            }
        }
    }
    // The streaming phase: wall clock (machine-dependent, order-of-
    // magnitude guard) and peak tracked ingestion bytes (machine-
    // independent — a blow-up here means profiles stopped collapsing).
    let block = |doc: &Json, key: &str| -> Vec<Json> {
        doc.get(key)
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .unwrap_or_default()
    };
    let baseline_streaming = block(baseline, "streaming");
    for fp in block(fresh, "streaming") {
        let Some(name) = fp.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(bp) = baseline_streaming
            .iter()
            .find(|p| p.get("name").and_then(Json::as_str) == Some(name))
        else {
            continue;
        };
        matched += 1;
        for metric in ["build_wall_ms", "peak_tracked_bytes"] {
            if let (Some(f), Some(b)) = (num(&fp, &[metric]), num(bp, &[metric])) {
                guard.at_most(&format!("{name}: {metric}"), f, b);
            }
        }
    }
    // The incremental phase (tolerant of its absence — baselines older
    // than the delta layer lack the block): delta-apply wall clock is
    // held like a latency, and the rebuild-over-apply speedup — the
    // O(delta) payoff itself — must not shrink below `baseline / factor`.
    let baseline_incremental = block(baseline, "incremental");
    for fp in block(fresh, "incremental") {
        let Some(name) = fp.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(bp) = baseline_incremental
            .iter()
            .find(|p| p.get("name").and_then(Json::as_str) == Some(name))
        else {
            continue;
        };
        matched += 1;
        if let (Some(f), Some(b)) = (num(&fp, &["delta_apply_ms"]), num(bp, &["delta_apply_ms"])) {
            guard.at_most(&format!("{name}: delta_apply_ms"), f, b);
        }
        if let (Some(f), Some(b)) = (num(&fp, &["speedup"]), num(bp, &["speedup"])) {
            guard.at_least(&format!("{name}: speedup"), f, b);
        }
    }
    if matched == 0 {
        return Err("no dataset points matched between fresh and baseline".into());
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let run = || -> Result<Guard, String> {
        let fresh = load(&args.fresh)?;
        let baseline = load(&args.baseline)?;
        let mut guard = Guard::new(args.factor);
        match args.kind.as_str() {
            "server" => guard_server(&mut guard, &fresh, &baseline)?,
            "scaling" => guard_scaling(&mut guard, &fresh, &baseline)?,
            other => return Err(format!("unknown --kind {other:?}")),
        }
        Ok(guard)
    };
    match run() {
        Ok(guard) if guard.violations.is_empty() => {
            println!(
                "bench_guard: {} {} metrics within {}x of baseline",
                guard.checked, args.kind, args.factor
            );
            ExitCode::SUCCESS
        }
        Ok(guard) => {
            eprintln!("bench_guard: {} regression(s):", guard.violations.len());
            for v in &guard.violations {
                eprintln!("  {v}");
            }
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("bench_guard: {msg}");
            ExitCode::FAILURE
        }
    }
}
