//! Runs the server throughput benchmark and writes `BENCH_server.json`.
//!
//! ```text
//! throughput [--tiny] [--out PATH] [--threads M] [--sessions K] [--shards N] [--seed S]
//! ```
//!
//! * `--tiny` — CI-smoke sizes (2 threads × 8 sessions).
//! * `--out PATH` — where to write the JSON report
//!   (default `BENCH_server.json`, i.e. the repo root when invoked via
//!   `cargo run` from the workspace root).
//! * `--threads M` — worker threads (default 8).
//! * `--sessions K` — sessions per thread (default 128; M·K are live at
//!   once).
//! * `--shards N` — session-table shards (default 16).
//! * `--seed S` — seed for the RND sessions in the strategy mix.

use jqi_bench::json::ToJson;
use jqi_bench::throughput::{run, ThroughputParams};
use std::process::ExitCode;

struct Args {
    tiny: bool,
    out: String,
    params: ThroughputParams,
}

const USAGE: &str =
    "usage: throughput [--tiny] [--out PATH] [--threads M] [--sessions K] [--shards N] [--seed S]";

/// `Ok(None)` means `--help` was requested (usage already printed).
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        tiny: false,
        out: "BENCH_server.json".to_string(),
        params: ThroughputParams::default(),
    };
    let mut it = std::env::args().skip(1);
    let numeric = |flag: &str, value: Option<String>| -> Result<usize, String> {
        value
            .ok_or(format!("{flag} needs a value"))?
            .parse()
            .map_err(|e| format!("bad {flag}: {e}"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => args.tiny = true,
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--threads" => args.params.threads = numeric("--threads", it.next())?,
            "--sessions" => args.params.sessions_per_thread = numeric("--sessions", it.next())?,
            "--shards" => args.params.shards = numeric("--shards", it.next())?,
            "--seed" => args.params.seed = numeric("--seed", it.next())? as u64,
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.params.threads == 0 || args.params.sessions_per_thread == 0 {
        return Err("--threads and --sessions must be at least 1".into());
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let report = run(args.tiny, args.params);
    println!("== Server throughput — concurrent sessions over one universe ==");
    print!("{}", report.table());
    let json = report.to_json().to_string_pretty();
    if let Err(e) = std::fs::write(&args.out, json + "\n") {
        eprintln!("failed to write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);
    ExitCode::SUCCESS
}
