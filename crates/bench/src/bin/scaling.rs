//! Runs the scaling sweep and writes `BENCH_scaling.json`.
//!
//! ```text
//! scaling [--tiny] [--out PATH] [--seed S] [--reference-cap N] [--max-ingest-bytes N]
//! ```
//!
//! * `--tiny` — CI-smoke sizes (one small synthetic + TPC-H small point,
//!   streaming at SF 0.002).
//! * `--out PATH` — where to write the JSON report
//!   (default `BENCH_scaling.json`, i.e. the repo root when invoked via
//!   `cargo run` from the workspace root).
//! * `--seed S` — generator seed.
//! * `--reference-cap N` — largest product for which the row-pair
//!   reference build is also timed.
//! * `--max-ingest-bytes N` — abort (panic) if the streaming phase's
//!   tracked ingestion bytes exceed `N`; CI smoke sets this so a profile
//!   blow-up fails loudly instead of OOMing the runner.

use jqi_bench::json::ToJson;
use jqi_bench::scaling::{run, ScalingParams};
use std::process::ExitCode;

struct Args {
    tiny: bool,
    out: String,
    params: ScalingParams,
}

const USAGE: &str =
    "usage: scaling [--tiny] [--out PATH] [--seed S] [--reference-cap N] [--max-ingest-bytes N]";

/// `Ok(None)` means `--help` was requested (usage already printed).
fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        tiny: false,
        out: "BENCH_scaling.json".to_string(),
        params: ScalingParams::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tiny" => args.tiny = true,
            "--out" => args.out = it.next().ok_or("--out needs a value")?,
            "--seed" => {
                args.params.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--reference-cap" => {
                args.params.reference_cap = it
                    .next()
                    .ok_or("--reference-cap needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --reference-cap: {e}"))?;
            }
            "--max-ingest-bytes" => {
                args.params.ingest_byte_ceiling = Some(
                    it.next()
                        .ok_or("--max-ingest-bytes needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --max-ingest-bytes: {e}"))?,
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(Some(args))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let report = run(args.tiny, args.params);
    println!("== Scaling — Universe construction and lookahead latency ==");
    print!("{}", report.table());
    let json = report.to_json().to_string_pretty();
    if let Err(e) = std::fs::write(&args.out, json + "\n") {
        eprintln!("failed to write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);
    ExitCode::SUCCESS
}
