//! The `scaling` benchmark: Universe construction and lookahead latency
//! across product sizes up to 10⁸ tuples.
//!
//! The paper's tractability argument is that TPC-H-scale Cartesian products
//! collapse into few distinct T-signatures; this harness records whether
//! the implementation actually delivers that — for each dataset point it
//! measures
//!
//! * the profile-deduplicated `Universe::build` (the production path),
//! * the row-pair reference build (`Universe::build_rowpair_reference`,
//!   the pre-deduplication algorithm), skipped above
//!   [`ScalingParams::reference_cap`] product tuples,
//! * first-question latency of L1S and (on small class counts) L3S.
//!
//! The `scaling` binary renders the points as a table and writes
//! `BENCH_scaling.json` at the repo root; see the README for the schema.

use crate::json::{Json, ToJson};
use jqi_core::strategy::{Lookahead, Strategy};
use jqi_core::universe::Universe;
use jqi_core::{InferenceState, IngestOptions, UniverseDelta};
use jqi_datagen::stream::{SfConfig, SfJoin, SfStream};
use jqi_datagen::tpch::{TpchJoin, TpchScale, TpchTables};
use jqi_datagen::ScaledConfig;
use jqi_relation::{Instance, RowChunk, Side, Tuple, Value};
use std::collections::HashMap;
use std::time::Instant;

/// Sweep parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScalingParams {
    /// Run the row-pair reference build only while `|R|·|P|` is at most
    /// this (the reference is O(product) and becomes infeasible long
    /// before the deduplicated build does).
    pub reference_cap: u64,
    /// Measure L1S first-question latency only up to this many classes.
    pub l1s_class_cap: usize,
    /// Measure L3S first-question latency only up to this many classes.
    pub l3s_class_cap: usize,
    /// Generator seed.
    pub seed: u64,
    /// Hard ceiling on the streaming phase's tracked ingestion bytes
    /// (`None` = unlimited). CI smoke passes a ceiling so a profile-space
    /// blow-up fails the job with a message instead of OOMing the runner.
    pub ingest_byte_ceiling: Option<usize>,
}

impl Default for ScalingParams {
    fn default() -> Self {
        ScalingParams {
            reference_cap: 20_000_000,
            l1s_class_cap: 5_000,
            l3s_class_cap: 48,
            seed: 0x5CA1E,
            ingest_byte_ceiling: None,
        }
    }
}

/// One measured dataset point.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Dataset label, e.g. `synthetic (3,3,1000x1000,32·32 distinct,12)`.
    pub name: String,
    /// `"synthetic"` or `"tpch"`.
    pub kind: &'static str,
    /// `|R|`.
    pub rows_r: usize,
    /// `|P|`.
    pub rows_p: usize,
    /// `|D| = |R| · |P|`.
    pub product_tuples: u64,
    /// Distinct R-side join profiles found by the build.
    pub distinct_r_profiles: usize,
    /// Distinct P-side join profiles found by the build.
    pub distinct_p_profiles: usize,
    /// Number of T-equivalence classes.
    pub classes: usize,
    /// Wall-clock of the deduplicated `Universe::build`, in milliseconds.
    pub build_dedup_ms: f64,
    /// Wall-clock of the row-pair reference build (`None` above the cap).
    pub build_rowpair_ms: Option<f64>,
    /// `build_rowpair_ms / build_dedup_ms` when both ran.
    pub build_speedup: Option<f64>,
    /// First-question latency of L1S on the fresh session, milliseconds.
    pub l1s_first_step_ms: Option<f64>,
    /// First-question latency of L3S on the fresh session, milliseconds.
    pub l3s_first_step_ms: Option<f64>,
    /// Resident bytes of one fresh session's derived inference state over
    /// this universe (`InferenceState::state_bytes`) — the per-session
    /// footprint a server pays at this scale.
    pub state_bytes: usize,
    /// Resident bytes of the shared containment closure
    /// (`ClassClosure::resident_bytes`) — paid once per universe,
    /// amortized over every session.
    pub closure_bytes: usize,
}

/// One measured end-to-end streaming build (the `streaming` phase):
/// parallel chunk generation at a real TPC-H scale factor feeding
/// `Universe::build_streaming` through bounded channels, with rows never
/// materialized.
#[derive(Debug, Clone)]
pub struct StreamingPoint {
    /// Point label, e.g. `streaming customer⋈orders SF=1`.
    pub name: String,
    /// TPC-H scale factor the stream was generated at.
    pub sf: f64,
    /// Rows streamed into `R`.
    pub rows_r: u64,
    /// Rows streamed into `P`.
    pub rows_p: u64,
    /// Distinct R-side join profiles after the fold.
    pub distinct_r_profiles: usize,
    /// Distinct P-side join profiles after the fold.
    pub distinct_p_profiles: usize,
    /// Number of T-equivalence classes of the finished universe.
    pub classes: usize,
    /// End-to-end wall clock (generation + both ingestion passes +
    /// universe assembly), milliseconds.
    pub build_wall_ms: f64,
    /// Streamed rows per second of end-to-end wall clock.
    pub rows_per_s: f64,
    /// Peak tracked bytes of the profile accumulators — the streaming
    /// build's resident ingestion state.
    pub peak_tracked_bytes: usize,
    /// What the rows would occupy if materialized as interned tuples.
    pub materialized_row_bytes: u64,
    /// `materialized_row_bytes / peak_tracked_bytes` — how far the
    /// streaming path stays below holding the rows (≥ 10× at SF 1 is the
    /// acceptance bar; < 1 is expected at smoke scale factors where rows
    /// are too few to saturate the profile space).
    pub memory_ratio: f64,
    /// Ingestion worker threads.
    pub threads: usize,
    /// Parallel generator workers feeding the bounded channels.
    pub gen_workers: usize,
}

/// One measured incremental-maintenance point (the `incremental` phase):
/// a [`UniverseDelta`] applied to a delta-capable streaming universe via
/// [`Universe::apply_delta`], against rebuilding from scratch with
/// `Universe::build_streaming` over the *edited* stream — the alternative
/// an operator without incremental maintenance actually runs.
#[derive(Debug, Clone)]
pub struct IncrementalPoint {
    /// Point label, e.g. `incremental customer⋈orders SF=0.1 single-row`.
    pub name: String,
    /// TPC-H scale factor of the base stream.
    pub sf: f64,
    /// Base rows streamed into `R`.
    pub rows_r: u64,
    /// Base rows streamed into `P`.
    pub rows_p: u64,
    /// Row edits in the applied delta (inserts + deletes).
    pub edits: usize,
    /// T-equivalence classes before the delta.
    pub classes_before: usize,
    /// T-equivalence classes after the delta.
    pub classes_after: usize,
    /// Wall-clock of `Universe::apply_delta`, milliseconds (best of 3).
    pub delta_apply_ms: f64,
    /// Wall-clock of the from-scratch `Universe::build_streaming` over
    /// the edited stream, milliseconds.
    pub rebuild_ms: f64,
    /// `rebuild_ms / delta_apply_ms` — the headline O(delta) payoff.
    pub speedup: f64,
    /// Peak resident bytes of the live row tables the delta-capable
    /// build maintains (the memory rent incremental maintenance pays).
    pub live_bytes: usize,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// Parameters the sweep ran with.
    pub params: ScalingParams,
    /// One entry per dataset, in sweep order.
    pub points: Vec<ScalingPoint>,
    /// The `streaming` phase's points, in sweep order.
    pub streaming: Vec<StreamingPoint>,
    /// The `incremental` phase's points, in sweep order.
    pub incremental: Vec<IncrementalPoint>,
}

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

/// Measures one instance (see the module docs for what is timed).
pub fn measure_instance(
    name: String,
    kind: &'static str,
    instance: Instance,
    params: &ScalingParams,
) -> ScalingPoint {
    let rows_r = instance.r().len();
    let rows_p = instance.p().len();
    let product_tuples = instance.product_size();

    // Sub-millisecond builds are dominated by one-shot process noise
    // (allocator warm-up, page faults): take the best of a few runs for
    // small products so the reported time — and the CI regression guard
    // riding on `build_speedup` — is stable. Large builds are long enough
    // to be stable single-shot.
    let runs = if product_tuples <= 100_000 { 3 } else { 1 };
    let timed_best = |build: &dyn Fn() -> Universe| -> (f64, Universe) {
        let mut best: Option<(f64, Universe)> = None;
        for _ in 0..runs {
            let start = Instant::now();
            let u = build();
            let elapsed = ms(start);
            if best.as_ref().is_none_or(|(b, _)| elapsed < *b) {
                best = Some((elapsed, u));
            }
        }
        best.expect("at least one run")
    };
    let (build_dedup_ms, universe) = timed_best(&|| Universe::build(instance.clone()));

    let build_rowpair_ms = (product_tuples <= params.reference_cap).then(|| {
        let (elapsed, reference) =
            timed_best(&|| Universe::build_rowpair_reference(instance.clone()));
        assert_eq!(
            reference.total_tuples(),
            universe.total_tuples(),
            "reference and dedup builds disagree on {name}"
        );
        assert_eq!(
            reference.num_classes(),
            universe.num_classes(),
            "reference and dedup builds disagree on {name}"
        );
        elapsed
    });
    let build_speedup = build_rowpair_ms.map(|r| r / build_dedup_ms.max(1e-9));

    let first_step = |depth: usize, cap: usize| -> Option<f64> {
        if universe.num_classes() > cap {
            return None;
        }
        let state = InferenceState::new(&universe);
        let mut strategy = Lookahead::new(depth);
        let start = Instant::now();
        let picked = strategy.next(&state).expect("strategies are infallible");
        let elapsed = ms(start);
        std::hint::black_box(picked);
        Some(elapsed)
    };
    let l1s_first_step_ms = first_step(1, params.l1s_class_cap);
    let l3s_first_step_ms = first_step(3, params.l3s_class_cap);
    let state_bytes = InferenceState::new(&universe).state_bytes();
    let closure_bytes = universe.closure().resident_bytes();

    ScalingPoint {
        name,
        kind,
        rows_r,
        rows_p,
        product_tuples,
        distinct_r_profiles: universe.distinct_r_profiles(),
        distinct_p_profiles: universe.distinct_p_profiles(),
        classes: universe.num_classes(),
        build_dedup_ms,
        build_rowpair_ms,
        build_speedup,
        l1s_first_step_ms,
        l3s_first_step_ms,
        state_bytes,
        closure_bytes,
    }
}

/// Measures one end-to-end streaming build at scale factor `sf`:
/// `Customer ⋈ Orders` chunks generated by parallel workers, folded into
/// weighted profiles by `Universe::build_streaming`, with generation and
/// folding overlapping through bounded channels.
pub fn measure_streaming(sf: f64, params: &ScalingParams) -> StreamingPoint {
    let config = SfConfig::new(sf, params.seed);
    let stream = SfStream::new(config, SfJoin::CustomerOrders)
        .expect("streaming workload schema is well-formed");
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let gen_workers = threads.clamp(1, 4);
    let mut options = IngestOptions::with_threads(threads);
    options.byte_ceiling = params.ingest_byte_ceiling;

    let start = Instant::now();
    let (universe, stats) = Universe::build_streaming_with_options(
        stream.schema().clone(),
        || stream.par_chunks(gen_workers, 4),
        &options,
    );
    let build_wall_ms = ms(start);

    let rows = stats.rows_r + stats.rows_p;
    let rows_per_s = rows as f64 / (build_wall_ms / 1e3).max(1e-9);
    let memory_ratio = stats.materialized_row_bytes as f64 / stats.peak_tracked_bytes.max(1) as f64;
    StreamingPoint {
        name: format!("streaming {} SF={sf}", stream.join().name()),
        sf,
        rows_r: stats.rows_r,
        rows_p: stats.rows_p,
        distinct_r_profiles: stats.distinct_r,
        distinct_p_profiles: stats.distinct_p,
        classes: universe.num_classes(),
        build_wall_ms,
        rows_per_s,
        peak_tracked_bytes: stats.peak_tracked_bytes,
        materialized_row_bytes: stats.materialized_row_bytes,
        memory_ratio,
        threads: stats.threads,
        gen_workers,
    }
}

/// Measures incremental maintenance at scale factor `sf`: a live
/// `Customer ⋈ Orders` universe absorbing (a) one fresh-key order row and
/// (b) a mixed 1 % batch (half deletes of streamed rows, half fresh-key
/// inserts), each timed against rebuilding the edited stream from
/// scratch. The applied and rebuilt universes are cross-checked for
/// agreement on class count and total tuples — the bench doubles as an
/// end-to-end equivalence assertion at a scale the unit tests never see.
pub fn measure_incremental(sf: f64, params: &ScalingParams) -> Vec<IncrementalPoint> {
    let config = SfConfig::new(sf, params.seed);
    let stream = SfStream::new(config, SfJoin::CustomerOrders)
        .expect("streaming workload schema is well-formed");
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let schema = stream.schema().clone();

    let (base, stats) = Universe::build_streaming_live(schema.clone(), || stream.chunks(), threads);
    let (rows_r, rows_p) = (stats.rows_r, stats.rows_p);
    let total_rows = rows_r + rows_p;
    let live_bytes = stats.peak_tracked_bytes;

    // Edit material: the first streamed rows of each side are the delete
    // candidates; fresh-key variants of them (the key column replaced by
    // a value the generator never produces) are the inserts — new
    // customers/orders whose remaining columns recombine live symbols.
    let batch_edits = ((total_rows as usize) / 100).max(2);
    let wanted = batch_edits / 2 + 1;
    let mut sample: [Vec<Tuple>; 2] = [Vec::new(), Vec::new()];
    for chunk in stream.chunks() {
        let slot = match chunk.side {
            Side::R => 0,
            Side::P => 1,
        };
        if sample[slot].len() < wanted {
            sample[slot].extend(chunk.rows.iter().cloned());
        }
        if sample[0].len() >= wanted && sample[1].len() >= wanted {
            break;
        }
    }
    let side_of = |slot: usize| if slot == 0 { Side::R } else { Side::P };
    let fresh_variant = |slot: usize, i: usize| -> Tuple {
        let row = &sample[slot][i % sample[slot].len()];
        let mut symbols = row.symbols().to_vec();
        symbols[0] = schema
            .interner()
            .intern(&Value::int(0x7E57_0000_0000 + i as i64 * 2 + slot as i64));
        Tuple::new(symbols)
    };

    // The from-scratch alternative: regenerate the stream, skip the
    // deleted occurrences, append the inserted rows, and run the plain
    // (reps-only) streaming build — the cheapest full rebuild available.
    let rebuild = |inserts: &[(Side, Tuple)], deletes: &[(Side, Tuple)]| -> (f64, Universe) {
        let mut budget: [HashMap<Tuple, usize>; 2] = [HashMap::new(), HashMap::new()];
        for (side, row) in deletes {
            let slot = match side {
                Side::R => 0,
                Side::P => 1,
            };
            *budget[slot].entry(row.clone()).or_insert(0) += 1;
        }
        let extra: Vec<RowChunk> = [Side::R, Side::P]
            .into_iter()
            .map(|side| RowChunk {
                side,
                rows: inserts
                    .iter()
                    .filter(|(s, _)| *s == side)
                    .map(|(_, row)| row.clone())
                    .collect(),
            })
            .filter(|chunk| !chunk.is_empty())
            .collect();
        let source = || {
            let mut budget = budget.clone();
            let extra = extra.clone();
            stream
                .chunks()
                .map(move |mut chunk| {
                    let slot = match chunk.side {
                        Side::R => 0,
                        Side::P => 1,
                    };
                    if !budget[slot].is_empty() {
                        chunk.rows.retain(|row| match budget[slot].get_mut(row) {
                            Some(n) if *n > 0 => {
                                *n -= 1;
                                false
                            }
                            _ => true,
                        });
                    }
                    chunk
                })
                .chain(extra)
        };
        let start = Instant::now();
        let (universe, _) = Universe::build_streaming(schema.clone(), source, threads);
        (ms(start), universe)
    };

    let measure = |name: String,
                   inserts: Vec<(Side, Tuple)>,
                   deletes: Vec<(Side, Tuple)>|
     -> IncrementalPoint {
        let mut delta = UniverseDelta::new();
        for (side, row) in &deletes {
            delta.delete(*side, row.clone());
        }
        for (side, row) in &inserts {
            delta.insert(*side, row.clone());
        }
        let mut best = f64::INFINITY;
        let mut applied = None;
        for _ in 0..3 {
            let start = Instant::now();
            let next = base.apply_delta(&delta).expect("edit script is valid");
            let elapsed = ms(start);
            if elapsed < best {
                best = elapsed;
                applied = Some(next);
            }
        }
        let applied = applied.expect("at least one run");
        let (rebuild_ms, rebuilt) = rebuild(&inserts, &deletes);
        assert_eq!(
            applied.num_classes(),
            rebuilt.num_classes(),
            "{name}: delta-applied universe disagrees with the rebuild"
        );
        assert_eq!(
            applied.total_tuples(),
            rebuilt.total_tuples(),
            "{name}: delta-applied universe disagrees with the rebuild"
        );
        IncrementalPoint {
            name,
            sf,
            rows_r,
            rows_p,
            edits: delta.len(),
            classes_before: base.num_classes(),
            classes_after: applied.num_classes(),
            delta_apply_ms: best,
            rebuild_ms,
            speedup: rebuild_ms / best.max(1e-9),
            live_bytes,
        }
    };

    let join = stream.join().name();
    let single = measure(
        format!("incremental {join} SF={sf} single-row"),
        vec![(Side::P, fresh_variant(1, 0))],
        vec![],
    );
    let deletes: Vec<(Side, Tuple)> = (0..batch_edits / 2)
        .map(|i| {
            let slot = i % 2;
            (
                side_of(slot),
                sample[slot][i / 2 % sample[slot].len()].clone(),
            )
        })
        .collect();
    let inserts: Vec<(Side, Tuple)> = (0..batch_edits - deletes.len())
        .map(|i| {
            let slot = i % 2;
            (side_of(slot), fresh_variant(slot, i + 1))
        })
        .collect();
    let batch = measure(
        format!("incremental {join} SF={sf} batch-1%"),
        inserts,
        deletes,
    );
    vec![single, batch]
}

/// The synthetic duplicate-heavy sweep: products from 10⁴ to 10⁸ tuples,
/// every one collapsing into ≤ 2¹⁰ profile pairs. The 10⁶ point (1000×1000
/// rows, 32·32 distinct profiles) is the acceptance workload the README's
/// speedup claim refers to.
pub fn synthetic_sweep(tiny: bool) -> Vec<ScaledConfig> {
    if tiny {
        return vec![ScaledConfig::new(3, 3, 100, 100, 8, 8, 12)];
    }
    vec![
        ScaledConfig::new(3, 3, 100, 100, 16, 16, 12),   // 10^4
        ScaledConfig::new(3, 3, 1000, 1000, 32, 32, 12), // 10^6, acceptance
        ScaledConfig::new(3, 3, 4000, 2500, 32, 32, 12), // 10^7
        ScaledConfig::new(2, 4, 10_000, 10_000, 24, 24, 10), // 10^8
    ]
}

/// TPC-H Join 4 (Orders × Lineitem, the largest product) at the given
/// scales. Keys are near-distinct, so this is the low-duplication end of
/// the spectrum: deduplication finds few profiles to merge and must not
/// cost anything.
pub fn tpch_sweep(tiny: bool) -> Vec<TpchScale> {
    if tiny {
        return vec![TpchScale::Small];
    }
    vec![TpchScale::Small, TpchScale::Large, TpchScale::Huge]
}

/// Scale factors of the `streaming` phase: real SF 1 for the full sweep
/// (1.65 M rows end to end), SF 0.002 for CI smoke.
pub fn streaming_sweep(tiny: bool) -> Vec<f64> {
    if tiny {
        return vec![0.002];
    }
    vec![1.0]
}

/// Scale factors of the `incremental` phase: SF 0.1 (165 k rows — the
/// acceptance point for the ≥ 50× single-row speedup) for the full
/// sweep, SF 0.002 for CI smoke.
pub fn incremental_sweep(tiny: bool) -> Vec<f64> {
    if tiny {
        return vec![0.002];
    }
    vec![0.1]
}

/// Runs the full sweep.
pub fn run(tiny: bool, params: ScalingParams) -> ScalingReport {
    let mut points = Vec::new();
    for cfg in synthetic_sweep(tiny) {
        let instance = cfg.generate(params.seed);
        points.push(measure_instance(
            format!("synthetic {cfg}"),
            "synthetic",
            instance,
            &params,
        ));
    }
    for scale in tpch_sweep(tiny) {
        let tables = TpchTables::generate(scale, params.seed);
        let workload = tables.workload(TpchJoin::Join4);
        points.push(measure_instance(
            format!("tpch {} {}", scale, workload.join),
            "tpch",
            workload.instance,
            &params,
        ));
    }
    let streaming = streaming_sweep(tiny)
        .into_iter()
        .map(|sf| measure_streaming(sf, &params))
        .collect();
    let incremental = incremental_sweep(tiny)
        .into_iter()
        .flat_map(|sf| measure_incremental(sf, &params))
        .collect();
    ScalingReport {
        params,
        points,
        streaming,
        incremental,
    }
}

impl ScalingReport {
    /// Plain-text table of the points.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>12} {:>9} {:>8} {:>12} {:>12} {:>9} {:>10} {:>10} {:>9}\n",
            "dataset",
            "product",
            "profiles",
            "classes",
            "dedup(ms)",
            "rowpair(ms)",
            "speedup",
            "L1S(ms)",
            "L3S(ms)",
            "state(B)"
        ));
        let opt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.3}"));
        for p in &self.points {
            out.push_str(&format!(
                "{:<44} {:>12} {:>9} {:>8} {:>12.3} {:>12} {:>9} {:>10} {:>10} {:>9}\n",
                p.name,
                p.product_tuples,
                format!("{}·{}", p.distinct_r_profiles, p.distinct_p_profiles),
                p.classes,
                p.build_dedup_ms,
                opt(p.build_rowpair_ms),
                p.build_speedup
                    .map_or("-".to_string(), |s| format!("{s:.1}x")),
                opt(p.l1s_first_step_ms),
                opt(p.l3s_first_step_ms),
                p.state_bytes,
            ));
        }
        if !self.streaming.is_empty() {
            out.push_str(&format!(
                "\n{:<40} {:>11} {:>11} {:>8} {:>11} {:>12} {:>11} {:>12} {:>8}\n",
                "streaming build",
                "rows",
                "profiles",
                "classes",
                "wall(ms)",
                "rows/s",
                "peak(B)",
                "row-mem(B)",
                "ratio"
            ));
            for s in &self.streaming {
                out.push_str(&format!(
                    "{:<40} {:>11} {:>11} {:>8} {:>11.1} {:>12.0} {:>11} {:>12} {:>7.1}x\n",
                    s.name,
                    s.rows_r + s.rows_p,
                    format!("{}·{}", s.distinct_r_profiles, s.distinct_p_profiles),
                    s.classes,
                    s.build_wall_ms,
                    s.rows_per_s,
                    s.peak_tracked_bytes,
                    s.materialized_row_bytes,
                    s.memory_ratio,
                ));
            }
        }
        if !self.incremental.is_empty() {
            out.push_str(&format!(
                "\n{:<44} {:>7} {:>9} {:>9} {:>11} {:>12} {:>9} {:>11}\n",
                "incremental maintenance",
                "edits",
                "classes",
                "apply(ms)",
                "rebuild(ms)",
                "speedup",
                "rows",
                "live(B)"
            ));
            for p in &self.incremental {
                out.push_str(&format!(
                    "{:<44} {:>7} {:>9} {:>9.3} {:>11.1} {:>11.1}x {:>9} {:>11}\n",
                    p.name,
                    p.edits,
                    format!("{}→{}", p.classes_before, p.classes_after),
                    p.delta_apply_ms,
                    p.rebuild_ms,
                    p.speedup,
                    p.rows_r + p.rows_p,
                    p.live_bytes,
                ));
            }
        }
        out
    }
}

impl ToJson for StreamingPoint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("sf".into(), Json::Num(self.sf)),
            ("rows_r".into(), Json::num(self.rows_r as f64)),
            ("rows_p".into(), Json::num(self.rows_p as f64)),
            (
                "distinct_r_profiles".into(),
                Json::num(self.distinct_r_profiles as f64),
            ),
            (
                "distinct_p_profiles".into(),
                Json::num(self.distinct_p_profiles as f64),
            ),
            ("classes".into(), Json::num(self.classes as f64)),
            ("build_wall_ms".into(), Json::Num(self.build_wall_ms)),
            ("rows_per_s".into(), Json::Num(self.rows_per_s)),
            (
                "peak_tracked_bytes".into(),
                Json::num(self.peak_tracked_bytes as f64),
            ),
            (
                "materialized_row_bytes".into(),
                Json::num(self.materialized_row_bytes as f64),
            ),
            ("memory_ratio".into(), Json::Num(self.memory_ratio)),
            ("threads".into(), Json::num(self.threads as f64)),
            ("gen_workers".into(), Json::num(self.gen_workers as f64)),
        ])
    }
}

impl ToJson for IncrementalPoint {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("sf".into(), Json::Num(self.sf)),
            ("rows_r".into(), Json::num(self.rows_r as f64)),
            ("rows_p".into(), Json::num(self.rows_p as f64)),
            ("edits".into(), Json::num(self.edits as f64)),
            (
                "classes_before".into(),
                Json::num(self.classes_before as f64),
            ),
            ("classes_after".into(), Json::num(self.classes_after as f64)),
            ("delta_apply_ms".into(), Json::Num(self.delta_apply_ms)),
            ("rebuild_ms".into(), Json::Num(self.rebuild_ms)),
            ("speedup".into(), Json::Num(self.speedup)),
            ("live_bytes".into(), Json::num(self.live_bytes as f64)),
        ])
    }
}

impl ToJson for ScalingPoint {
    fn to_json(&self) -> Json {
        let opt = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
        Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("kind".into(), Json::str(self.kind)),
            ("rows_r".into(), Json::num(self.rows_r as f64)),
            ("rows_p".into(), Json::num(self.rows_p as f64)),
            (
                "product_tuples".into(),
                Json::num(self.product_tuples as f64),
            ),
            (
                "distinct_r_profiles".into(),
                Json::num(self.distinct_r_profiles as f64),
            ),
            (
                "distinct_p_profiles".into(),
                Json::num(self.distinct_p_profiles as f64),
            ),
            ("classes".into(), Json::num(self.classes as f64)),
            ("build_dedup_ms".into(), Json::Num(self.build_dedup_ms)),
            ("build_rowpair_ms".into(), opt(self.build_rowpair_ms)),
            ("build_speedup".into(), opt(self.build_speedup)),
            ("l1s_first_step_ms".into(), opt(self.l1s_first_step_ms)),
            ("l3s_first_step_ms".into(), opt(self.l3s_first_step_ms)),
            ("state_bytes".into(), Json::num(self.state_bytes as f64)),
            ("closure_bytes".into(), Json::num(self.closure_bytes as f64)),
        ])
    }
}

impl ToJson for ScalingReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("bench".into(), Json::str("scaling")),
            (
                "generated_by".into(),
                Json::str("cargo run -p jqi_bench --bin scaling --release"),
            ),
            (
                "reference_cap".into(),
                Json::num(self.params.reference_cap as f64),
            ),
            ("seed".into(), Json::num(self.params.seed as f64)),
            ("points".into(), Json::arr(&self.points)),
            ("streaming".into(), Json::arr(&self.streaming)),
            ("incremental".into(), Json::arr(&self.incremental)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_measures_everything() {
        let report = run(true, ScalingParams::default());
        assert_eq!(report.points.len(), 2);
        let synthetic = &report.points[0];
        assert_eq!(synthetic.kind, "synthetic");
        assert_eq!(synthetic.product_tuples, 10_000);
        assert!(synthetic.distinct_r_profiles <= 8);
        assert!(synthetic.build_dedup_ms > 0.0);
        assert!(synthetic.build_rowpair_ms.is_some());
        assert!(synthetic.build_speedup.is_some());
        assert!(synthetic.l1s_first_step_ms.is_some());
        assert!(synthetic.state_bytes > 0);
        assert!(synthetic.closure_bytes > 0);
        let tpch = &report.points[1];
        assert_eq!(tpch.kind, "tpch");
        assert!(tpch.product_tuples > 0);
        assert_eq!(report.streaming.len(), 1);
        let s = &report.streaming[0];
        assert_eq!(s.sf, 0.002);
        assert_eq!(s.rows_r, 300);
        assert_eq!(s.rows_p, 3000);
        assert!(s.distinct_r_profiles <= s.rows_r as usize);
        assert!(s.classes > 0);
        assert!(s.build_wall_ms > 0.0);
        assert!(s.rows_per_s > 0.0);
        assert!(s.peak_tracked_bytes > 0);
        assert!(s.materialized_row_bytes > 0);
        assert!(s.threads >= 1);
        assert_eq!(report.incremental.len(), 2);
        let single = &report.incremental[0];
        assert!(single.name.ends_with("single-row"), "{}", single.name);
        assert_eq!(single.edits, 1);
        assert!(single.classes_before > 0);
        assert!(single.delta_apply_ms > 0.0);
        assert!(single.rebuild_ms > 0.0);
        assert!(single.speedup > 0.0);
        assert!(single.live_bytes > 0);
        let batch = &report.incremental[1];
        assert!(batch.name.ends_with("batch-1%"), "{}", batch.name);
        assert_eq!(batch.edits, 33, "1% of 3300 streamed rows");
        assert!(batch.classes_after > 0);
    }

    #[test]
    fn report_renders_table_and_json() {
        let report = run(true, ScalingParams::default());
        let table = report.table();
        assert!(table.contains("dataset"));
        assert!(table.contains("synthetic"));
        assert!(table.contains("streaming build"));
        let json = report.to_json().to_string_pretty();
        assert!(json.contains("\"bench\": \"scaling\""));
        assert!(json.contains("\"points\""));
        assert!(json.contains("\"build_speedup\""));
        assert!(json.contains("\"state_bytes\""));
        assert!(json.contains("\"streaming\""));
        assert!(json.contains("\"peak_tracked_bytes\""));
        assert!(json.contains("\"rows_per_s\""));
        assert!(table.contains("incremental maintenance"));
        assert!(json.contains("\"incremental\""));
        assert!(json.contains("\"delta_apply_ms\""));
        assert!(json.contains("\"rebuild_ms\""));
        assert!(json.contains("\"speedup\""));
    }

    #[test]
    fn streaming_byte_ceiling_trips_on_blowup() {
        // An absurdly small ceiling must abort the streaming phase with a
        // panic (the CI smoke job's OOM tripwire).
        let params = ScalingParams {
            ingest_byte_ceiling: Some(64),
            ..ScalingParams::default()
        };
        let result = std::panic::catch_unwind(|| measure_streaming(0.0005, &params));
        assert!(result.is_err());
    }
}
