//! §6 / Theorem 6.1 experiment: the exact CONS⋉ solver cross-validated
//! against DPLL on random 3SAT reductions, with timing.
//!
//! The paper proves the intractability but (having no tractable algorithm
//! to evaluate) reports no semijoin experiment. This harness makes the
//! theorem observable: satisfiability decisions of `find_consistent_semijoin
//! ∘ reduce` coincide with DPLL's, and the solver's running time grows
//! sharply with the number of variables around the 3SAT phase transition.

use crate::json::{Json, ToJson};
use crate::report::TextTable;
use jqi_semijoin::consistency::find_consistent_semijoin;
use jqi_semijoin::reduction::{decode_valuation, reduce};
use jqi_semijoin::sat::{dpll, random_3sat};
use std::time::Instant;

/// One (num_vars, formula) measurement.
#[derive(Debug, Clone)]
pub struct SemijoinRow {
    /// Number of 3SAT variables.
    pub num_vars: usize,
    /// Number of clauses (≈ 4.27·vars: the hard regime).
    pub num_clauses: usize,
    /// Fraction of formulas the DPLL solver found satisfiable.
    pub sat_fraction: f64,
    /// Mean DPLL time, seconds.
    pub dpll_seconds: f64,
    /// Mean CONS⋉ solver time on the reduced instance, seconds.
    pub cons_seconds: f64,
    /// Number of formulas where the two decisions disagreed (must be 0).
    pub disagreements: usize,
}

/// The full experiment: a sweep over variable counts.
#[derive(Debug, Clone)]
pub struct SemijoinReport {
    /// One row per variable count.
    pub rows: Vec<SemijoinRow>,
}

/// Runs `formulas` random 3SAT instances per variable count in `var_counts`,
/// at the phase-transition clause ratio.
pub fn run(var_counts: &[usize], formulas: usize, seed: u64) -> SemijoinReport {
    let mut rows = Vec::new();
    for &num_vars in var_counts {
        let num_clauses = (num_vars as f64 * 4.27).round() as usize;
        let mut sat_count = 0usize;
        let mut disagreements = 0usize;
        let mut dpll_total = 0.0f64;
        let mut cons_total = 0.0f64;
        for i in 0..formulas {
            let cnf = random_3sat(num_vars, num_clauses, seed.wrapping_add(i as u64));
            let t0 = Instant::now();
            let sat = dpll(&cnf);
            dpll_total += t0.elapsed().as_secs_f64();

            let red = reduce(&cnf);
            let t1 = Instant::now();
            let cons = find_consistent_semijoin(&red.instance, &red.sample);
            cons_total += t1.elapsed().as_secs_f64();

            if sat.is_some() {
                sat_count += 1;
            }
            if sat.is_some() != cons.is_some() {
                disagreements += 1;
            } else if let Some(theta) = cons {
                // The decoded valuation must satisfy the formula.
                if !cnf.is_satisfied_by(&decode_valuation(&red, &theta)) {
                    disagreements += 1;
                }
            }
        }
        rows.push(SemijoinRow {
            num_vars,
            num_clauses,
            sat_fraction: sat_count as f64 / formulas as f64,
            dpll_seconds: dpll_total / formulas as f64,
            cons_seconds: cons_total / formulas as f64,
            disagreements,
        });
    }
    SemijoinReport { rows }
}

impl ToJson for SemijoinRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("num_vars".into(), Json::Num(self.num_vars as f64)),
            ("num_clauses".into(), Json::Num(self.num_clauses as f64)),
            ("sat_fraction".into(), Json::Num(self.sat_fraction)),
            ("dpll_seconds".into(), Json::Num(self.dpll_seconds)),
            ("cons_seconds".into(), Json::Num(self.cons_seconds)),
            ("disagreements".into(), Json::Num(self.disagreements as f64)),
        ])
    }
}

impl ToJson for SemijoinReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![("rows".into(), Json::arr(&self.rows))])
    }
}

impl SemijoinReport {
    /// Renders the sweep as text.
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(&[
            "vars",
            "clauses",
            "sat frac",
            "DPLL (s)",
            "CONS⋉ (s)",
            "disagreements",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.num_vars.to_string(),
                r.num_clauses.to_string(),
                format!("{:.2}", r.sat_fraction),
                format!("{:.5}", r.dpll_seconds),
                format!("{:.5}", r.cons_seconds),
                r.disagreements.to_string(),
            ]);
        }
        t
    }

    /// Whether every decision agreed (the Theorem 6.1 cross-validation).
    pub fn all_agree(&self) -> bool {
        self.rows.iter().all(|r| r.disagreements == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_and_dpll_always_agree() {
        let report = run(&[4, 5], 8, 42);
        assert!(report.all_agree());
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.table().len(), 2);
    }

    #[test]
    fn phase_transition_mixes_sat_and_unsat() {
        // At ratio 4.27 with several formulas we expect a genuine mix —
        // in particular not 100% SAT — for at least one variable count.
        let report = run(&[5, 6], 12, 7);
        assert!(report
            .rows
            .iter()
            .any(|r| r.sat_fraction > 0.0 && r.sat_fraction < 1.0));
    }
}
