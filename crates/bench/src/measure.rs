//! Timing a single inference run.

use crate::json::{Json, ToJson};
use jqi_core::engine::{run_inference, PredicateOracle};
use jqi_core::strategy::StrategyKind;
use jqi_core::universe::Universe;
use jqi_relation::BitSet;
use std::time::{Duration, Instant};

/// The outcome of one timed inference run.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Strategy display name.
    pub strategy: String,
    /// Number of questions asked.
    pub interactions: usize,
    /// Wall-clock inference time in seconds.
    pub seconds: f64,
}

/// Runs `kind` against the goal-predicate oracle and times it.
///
/// The timer covers exactly what the paper times: the inference loop
/// (strategy computation + sample bookkeeping), not the construction of the
/// universe, which is shared by all strategies on an instance.
pub fn run_timed(universe: &Universe, kind: StrategyKind, goal: &BitSet, seed: u64) -> Measurement {
    let mut strategy = kind.build(seed);
    let mut oracle = PredicateOracle::new(goal.clone());
    let start = Instant::now();
    let run = run_inference(universe, strategy.as_mut(), &mut oracle)
        .expect("goal-predicate oracles never produce inconsistent samples");
    let elapsed = start.elapsed();
    debug_assert_eq!(
        universe.instance().equijoin(&run.predicate),
        universe.instance().equijoin(goal),
        "inferred predicate must be instance-equivalent to the goal"
    );
    Measurement {
        strategy: kind.name().to_string(),
        interactions: run.interactions,
        seconds: elapsed.as_secs_f64(),
    }
}

/// Averages measurements of one strategy over several runs.
#[derive(Debug, Clone)]
pub struct Averaged {
    /// Strategy display name.
    pub strategy: String,
    /// Mean number of interactions.
    pub mean_interactions: f64,
    /// Mean inference time in seconds.
    pub mean_seconds: f64,
    /// Number of runs averaged.
    pub runs: usize,
}

impl ToJson for Measurement {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("strategy".into(), Json::str(&self.strategy)),
            ("interactions".into(), Json::Num(self.interactions as f64)),
            ("seconds".into(), Json::Num(self.seconds)),
        ])
    }
}

impl ToJson for Averaged {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("strategy".into(), Json::str(&self.strategy)),
            (
                "mean_interactions".into(),
                Json::Num(self.mean_interactions),
            ),
            ("mean_seconds".into(), Json::Num(self.mean_seconds)),
            ("runs".into(), Json::Num(self.runs as f64)),
        ])
    }
}

/// Folds a list of measurements (all of the same strategy) into an average.
pub fn average(measurements: &[Measurement]) -> Averaged {
    assert!(!measurements.is_empty(), "cannot average zero measurements");
    let strategy = measurements[0].strategy.clone();
    debug_assert!(measurements.iter().all(|m| m.strategy == strategy));
    let n = measurements.len() as f64;
    Averaged {
        strategy,
        mean_interactions: measurements
            .iter()
            .map(|m| m.interactions as f64)
            .sum::<f64>()
            / n,
        mean_seconds: measurements.iter().map(|m| m.seconds).sum::<f64>() / n,
        runs: measurements.len(),
    }
}

/// Formats a duration in the paper's "seconds with millisecond precision"
/// style.
pub fn fmt_seconds(seconds: f64) -> String {
    if seconds < 0.0005 {
        "<0.001".to_string()
    } else {
        format!("{seconds:.3}")
    }
}

/// Convenience wrapper returning just the two numbers.
pub fn interactions_and_time(
    universe: &Universe,
    kind: StrategyKind,
    goal: &BitSet,
    seed: u64,
) -> (usize, Duration) {
    let m = run_timed(universe, kind, goal, seed);
    (m.interactions, Duration::from_secs_f64(m.seconds))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jqi_core::paper::example_2_1;
    use jqi_core::predicate_from_names;

    #[test]
    fn measurement_counts_match_engine() {
        let u = Universe::build(example_2_1());
        let goal = predicate_from_names(u.instance(), &[("A1", "B1")]).unwrap();
        let m = run_timed(&u, StrategyKind::Td, &goal, 0);
        assert_eq!(m.strategy, "TD");
        assert!(m.interactions >= 1);
        assert!(m.seconds >= 0.0);
    }

    #[test]
    fn averaging() {
        let ms = vec![
            Measurement {
                strategy: "TD".into(),
                interactions: 2,
                seconds: 0.5,
            },
            Measurement {
                strategy: "TD".into(),
                interactions: 4,
                seconds: 1.5,
            },
        ];
        let a = average(&ms);
        assert_eq!(a.mean_interactions, 3.0);
        assert_eq!(a.mean_seconds, 1.0);
        assert_eq!(a.runs, 2);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(0.0), "<0.001");
        assert_eq!(fmt_seconds(0.0123), "0.012");
        assert_eq!(fmt_seconds(56.167), "56.167");
    }
}
