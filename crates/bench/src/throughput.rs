//! The `throughput` benchmark: the `jqi_server` session service under
//! concurrent load.
//!
//! M worker threads drive K sessions each over one shared
//! `SessionManager` on the paper's flight & hotel instance — every session
//! a different simulated user (goals cycle through the instance's
//! non-nullable predicates, strategies through the paper's mix). Nine
//! phases are measured:
//!
//! 1. **interactive** — all `M·K` sessions live at once, each driven
//!    question-by-question to completion; the per-answer latency
//!    distribution covers the full service path (shard lookup, session
//!    lock, incremental state update, next-question strategy work).
//!    Afterwards the manager's [`SessionManager::stats`] are sampled, so
//!    the report carries the resident per-session memory (mask-compressed
//!    derived state + history log) and footprint regressions are visible.
//! 2. **batch** — fresh sessions fed their entire recorded label history
//!    through one `answer_batch` call each, the crowdsourcing arrival
//!    shape; latency is per batch, with the per-answer cost derived.
//! 3. **snapshot** — every session snapshotted to JSON, restored into a
//!    fresh manager, and verified to produce the same predicate; latency
//!    is per round-trip.
//! 4. **restore** — the restore half alone (deterministic replay through
//!    `apply_batch` mask ops, no JSON), bucketed by history length in the
//!    report's `restore_vs_history` array so replay cost can be read as a
//!    function of the session's age.
//! 5. **fleet** — the universe-level decision cache under a fleet of LkS
//!    sessions on a TPC-H workload: first-question latency with the cache
//!    disabled (*cold* — every session pays the full-candidate-set
//!    lookahead) versus enabled (*warm* — the first session computes,
//!    the rest answer from the shared cache), with the cache's
//!    hit/miss/eviction counters and resident bytes in the report.
//! 6. **hibernate** — the interactive fleet parked into the hibernation
//!    tier: resident vs parked bytes per session, and the wake (lazy
//!    re-materialization by replay) latency distribution.
//! 7. **durability** — the same interactive workload on a *durable*
//!    manager (real files, real fsync): per-answer latency with group
//!    commit (`wal_group`, one batched write + fsync per 2048 records,
//!    plus one final flush inside the timed region) and with an fsync per
//!    record (`wal_sync`, the cost ceiling), each also as a throughput
//!    ratio against the in-memory interactive phase (answers/s divided by
//!    WAL-on answers/s — the acceptance gate holds this within 3×); then
//!    the whole fleet is parked, spilled to segments, the manager dropped,
//!    and `SessionManager::recover` is timed — recovery wall clock and
//!    sessions/s.
//! 8. **transport** — the workload over loopback HTTP: every session gets
//!    its own keep-alive connection through the `jqi_net` epoll server and
//!    the `jqi_server::http` gateway (create → question/answer to
//!    completion → snapshot → restore into a twin tenant), all `M·K`
//!    connections held open concurrently; per-request latency is measured
//!    client-side and the server's live `open_connections` is sampled at
//!    a barrier while every client is still connected.
//! 9. **overload** — the load shedder under several times more offered
//!    load than the worker pool serves, through the chaos proxy: an
//!    uncontended pass sets the latency baseline, then a client fleet
//!    alternates session creates (admitted writes) with each session's
//!    cold first LkS question (the expensive, sheddable read) while two
//!    faulted connections (delay, drip) ride along. Reported:
//!    accepted-vs-shed split, both latency distributions, the
//!    accepted-p99-over-baseline ratio, goodput, and the must-be-zero
//!    wedge/error counters.
//!
//! The `throughput` binary renders a table and writes `BENCH_server.json`
//! at the repo root; see the README for the schema.

use crate::json::{Json, ToJson};
use jqi_core::paper::flight_hotel;
use jqi_core::{ClassId, DecisionCacheStats, Label, StrategyConfig, Universe};
use jqi_relation::BitSet;
use jqi_server::{DurabilityConfig, ManagerStats, ServerConfig, SessionManager, SessionSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load parameters.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputParams {
    /// Worker threads (M).
    pub threads: usize,
    /// Sessions per worker thread (K); `M·K` sessions are live at once.
    pub sessions_per_thread: usize,
    /// Shards of the session table.
    pub shards: usize,
    /// Seed for the RND sessions in the strategy mix.
    pub seed: u64,
}

impl Default for ThroughputParams {
    fn default() -> Self {
        ThroughputParams {
            threads: 8,
            sessions_per_thread: 128,
            shards: 16,
            seed: 0xC0FFEE,
        }
    }
}

impl ThroughputParams {
    /// CI-smoke sizes.
    pub fn tiny() -> Self {
        ThroughputParams {
            threads: 2,
            sessions_per_thread: 8,
            ..Self::default()
        }
    }
}

/// Latency distribution summary, in microseconds.
#[derive(Debug, Clone)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 95th percentile.
    pub p95_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Maximum.
    pub max_us: f64,
}

impl LatencySummary {
    fn of(mut samples: Vec<u64>) -> LatencySummary {
        assert!(!samples.is_empty(), "no latency samples recorded");
        samples.sort_unstable();
        let count = samples.len();
        let pct = |p: f64| -> f64 {
            let idx = ((count - 1) as f64 * p).round() as usize;
            samples[idx] as f64 / 1000.0
        };
        LatencySummary {
            count,
            mean_us: samples.iter().sum::<u64>() as f64 / count as f64 / 1000.0,
            p50_us: pct(0.50),
            p95_us: pct(0.95),
            p99_us: pct(0.99),
            max_us: pct(1.0),
        }
    }
}

impl ToJson for LatencySummary {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::num(self.count as f64)),
            ("mean_us".into(), Json::Num(self.mean_us)),
            ("p50_us".into(), Json::Num(self.p50_us)),
            ("p95_us".into(), Json::Num(self.p95_us)),
            ("p99_us".into(), Json::Num(self.p99_us)),
            ("max_us".into(), Json::Num(self.max_us)),
        ])
    }
}

/// One measured phase.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// `"interactive"`, `"batch"`, or `"snapshot"`.
    pub name: &'static str,
    /// Wall-clock for the whole phase, in seconds.
    pub elapsed_s: f64,
    /// Operations per second over the phase wall-clock (answers for the
    /// interactive phase, batches for the batch phase, round-trips for
    /// the snapshot phase).
    pub ops_per_sec: f64,
    /// Latency of one operation.
    pub latency: LatencySummary,
}

impl ToJson for PhaseReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("phase".into(), Json::str(self.name)),
            ("elapsed_s".into(), Json::Num(self.elapsed_s)),
            ("ops_per_sec".into(), Json::Num(self.ops_per_sec)),
            ("latency".into(), self.latency.to_json()),
        ])
    }
}

/// Restore latency bucketed by how many answers the snapshot carries.
#[derive(Debug, Clone)]
pub struct RestoreByHistory {
    /// Number of answers in the replayed history.
    pub history_len: usize,
    /// Sessions restored with this history length.
    pub count: usize,
    /// Mean restore latency for the bucket, µs.
    pub mean_us: f64,
}

impl ToJson for RestoreByHistory {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("history_len".into(), Json::num(self.history_len as f64)),
            ("count".into(), Json::num(self.count as f64)),
            ("mean_us".into(), Json::Num(self.mean_us)),
        ])
    }
}

/// The decision-cache counters as a JSON object.
fn cache_json(stats: &DecisionCacheStats) -> Json {
    Json::Obj(vec![
        ("hits".into(), Json::num(stats.hits as f64)),
        ("misses".into(), Json::num(stats.misses as f64)),
        ("evictions".into(), Json::num(stats.evictions as f64)),
        ("entries".into(), Json::num(stats.entries as f64)),
        ("bytes".into(), Json::num(stats.bytes as f64)),
        ("budget_bytes".into(), Json::num(stats.budget_bytes as f64)),
    ])
}

/// The fleet phase: cold vs warm first-question latency of a deterministic
/// lookahead fleet over one shared TPC-H universe.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Workload label, e.g. `"tpch SF=small Join 4"`.
    pub instance: String,
    /// The fleet's strategy config string (e.g. `"LKS:2"`).
    pub strategy: String,
    /// Sessions in the cold fleet (decision cache disabled).
    pub cold_sessions: usize,
    /// Sessions in the warm fleet (shared decision cache enabled).
    pub warm_sessions: usize,
    /// First-question latency with every session computing the lookahead.
    pub cold_first_question: LatencySummary,
    /// First-question latency with the shared cache (first session
    /// computes, the rest probe).
    pub warm_first_question: LatencySummary,
    /// `cold mean / warm mean`.
    pub warm_speedup: f64,
    /// The warm universe's cache counters after the fleet ran.
    pub cache: DecisionCacheStats,
}

impl ToJson for FleetReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("instance".into(), Json::str(&self.instance)),
            ("strategy".into(), Json::str(&self.strategy)),
            ("cold_sessions".into(), Json::num(self.cold_sessions as f64)),
            ("warm_sessions".into(), Json::num(self.warm_sessions as f64)),
            (
                "cold_first_question".into(),
                self.cold_first_question.to_json(),
            ),
            (
                "warm_first_question".into(),
                self.warm_first_question.to_json(),
            ),
            ("warm_speedup".into(), Json::Num(self.warm_speedup)),
            ("decision_cache".into(), cache_json(&self.cache)),
        ])
    }
}

/// The hibernate phase: the interactive fleet parked and woken again.
#[derive(Debug, Clone)]
pub struct HibernateReport {
    /// Fleet size.
    pub sessions: usize,
    /// Sessions the zero-TTL sweep actually parked.
    pub parked: usize,
    /// Mean full resident footprint per materialized session before
    /// parking (session struct + derived-state heap + history heap).
    pub resident_bytes_per_session: f64,
    /// Mean derived-state heap per materialized session (the PR-4 metric,
    /// kept for continuity).
    pub state_bytes_per_session: f64,
    /// Mean resident bytes per parked session (replay log + pending
    /// marker).
    pub hibernated_bytes_per_session: f64,
    /// Latency of the first touch after parking: lazy re-materialization
    /// by replay through one `apply_batch`.
    pub wake: LatencySummary,
}

impl ToJson for HibernateReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sessions".into(), Json::num(self.sessions as f64)),
            ("parked".into(), Json::num(self.parked as f64)),
            (
                "resident_bytes_per_session".into(),
                Json::Num(self.resident_bytes_per_session),
            ),
            (
                "state_bytes_per_session".into(),
                Json::Num(self.state_bytes_per_session),
            ),
            (
                "hibernated_bytes_per_session".into(),
                Json::Num(self.hibernated_bytes_per_session),
            ),
            ("wake".into(), self.wake.to_json()),
        ])
    }
}

/// The recovery half of the durability phase: a crashed (well, dropped)
/// fleet rebuilt from its WAL + spill segments.
#[derive(Debug, Clone)]
pub struct RecoveryBench {
    /// Sessions recovered.
    pub sessions: usize,
    /// …of which came back in the spilled (on-disk) tier.
    pub spilled: usize,
    /// WAL records replayed.
    pub wal_records: u64,
    /// Recovery wall clock, milliseconds.
    pub elapsed_ms: f64,
    /// Sessions recovered per second.
    pub sessions_per_sec: f64,
}

impl ToJson for RecoveryBench {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sessions".into(), Json::num(self.sessions as f64)),
            ("spilled".into(), Json::num(self.spilled as f64)),
            ("wal_records".into(), Json::num(self.wal_records as f64)),
            ("elapsed_ms".into(), Json::Num(self.elapsed_ms)),
            ("sessions_per_sec".into(), Json::Num(self.sessions_per_sec)),
        ])
    }
}

/// The durability phase: the interactive workload with a real WAL under
/// it, plus a timed recovery.
#[derive(Debug, Clone)]
pub struct DurabilityReport {
    /// Fleet size.
    pub sessions: usize,
    /// The in-memory interactive phase's per-answer mean, the latency
    /// context for the WAL-on means below.
    pub in_memory_mean_us: f64,
    /// Per-answer latency with group commit (one batched write + fsync
    /// per 2048 records) — the recommended configuration.
    pub wal_group: PhaseReport,
    /// Per-answer latency with an fsync per record — the cost ceiling.
    pub wal_sync: PhaseReport,
    /// Throughput cost of group commit: in-memory answers/s divided by
    /// WAL-on answers/s. The acceptance gate: ≤ 3.
    pub overhead_group_x: f64,
    /// Throughput cost of an fsync per record, same ratio.
    pub overhead_sync_x: f64,
    /// WAL records the group-commit run appended.
    pub wal_records: u64,
    /// fsyncs the group-commit run issued (records / syncs is the
    /// realized group size).
    pub wal_syncs: u64,
    /// WAL bytes the group-commit run appended, frames included.
    pub wal_bytes: u64,
    /// The timed recovery of the group-commit run's directory.
    pub recovery: RecoveryBench,
}

impl ToJson for DurabilityReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sessions".into(), Json::num(self.sessions as f64)),
            (
                "in_memory_mean_us".into(),
                Json::Num(self.in_memory_mean_us),
            ),
            ("wal_group".into(), self.wal_group.to_json()),
            ("wal_sync".into(), self.wal_sync.to_json()),
            ("overhead_group_x".into(), Json::Num(self.overhead_group_x)),
            ("overhead_sync_x".into(), Json::Num(self.overhead_sync_x)),
            ("wal_records".into(), Json::num(self.wal_records as f64)),
            ("wal_syncs".into(), Json::num(self.wal_syncs as f64)),
            ("wal_bytes".into(), Json::num(self.wal_bytes as f64)),
            ("recovery".into(), self.recovery.to_json()),
        ])
    }
}

/// The transport phase: the question/answer/snapshot/restore workload
/// again, this time over real loopback HTTP through the `jqi_net` epoll
/// server and the `jqi_server::http` gateway — one keep-alive connection
/// per session, all of them open concurrently, so the measurement covers
/// wire framing, JSON bodies, routing, and the parked-connection
/// hand-off, not just the in-process service path.
#[derive(Debug, Clone)]
pub struct TransportReport {
    /// Concurrent HTTP sessions (= keep-alive connections held open).
    pub sessions: usize,
    /// Client threads driving the connections.
    pub client_threads: usize,
    /// Server worker threads serving them (the epoll pool).
    pub server_workers: usize,
    /// Total HTTP requests issued (create + question + answer +
    /// snapshot + restore).
    pub requests: usize,
    /// Phase wall clock, seconds.
    pub elapsed_s: f64,
    /// Requests per second over the phase wall clock.
    pub requests_per_sec: f64,
    /// Client-measured per-request latency (write → full response).
    pub request_latency: LatencySummary,
    /// `open_connections` sampled from the server while every client
    /// connection was still alive — the concurrency actually sustained.
    pub open_connections_peak: usize,
    /// Sessions restored into the twin tenant over HTTP (must equal
    /// `sessions`).
    pub restored: usize,
    /// Wire-level protocol errors the server observed (must be 0).
    pub protocol_errors: u64,
}

impl ToJson for TransportReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sessions".into(), Json::num(self.sessions as f64)),
            (
                "client_threads".into(),
                Json::num(self.client_threads as f64),
            ),
            (
                "server_workers".into(),
                Json::num(self.server_workers as f64),
            ),
            ("requests".into(), Json::num(self.requests as f64)),
            ("elapsed_s".into(), Json::Num(self.elapsed_s)),
            ("requests_per_sec".into(), Json::Num(self.requests_per_sec)),
            ("request_latency".into(), self.request_latency.to_json()),
            (
                "open_connections_peak".into(),
                Json::num(self.open_connections_peak as f64),
            ),
            ("restored".into(), Json::num(self.restored as f64)),
            (
                "protocol_errors".into(),
                Json::num(self.protocol_errors as f64),
            ),
        ])
    }
}

/// The overload phase: the gateway behind the chaos proxy under more
/// offered load than its worker pool can serve, with tight admission
/// thresholds — the measurement of the load shedder itself. A clean
/// uncontended pass on the same wire path sets the latency baseline;
/// then a fleet of clients several times the worker pool hammers the
/// same endpoints. The acceptance shape: accepted requests stay within
/// a small factor of the uncontended p99 (the queue a request waits
/// behind is bounded by the shed thresholds), shed responses come back
/// in well under a millisecond (the 503 is written before routing or
/// body parsing), nothing wedges, and the wire stays clean.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// Metered load clients (each one keep-alive connection through the
    /// chaos proxy).
    pub clients: usize,
    /// Extra fault-ridden clients (delayed / dripping connections) that
    /// ride along unmetered — they must not wedge or corrupt anything.
    pub chaos_clients: usize,
    /// Server worker threads the load is offered against.
    pub server_workers: usize,
    /// Requests the metered clients offered.
    pub offered: usize,
    /// …of which were admitted and served.
    pub accepted: usize,
    /// …of which were shed with `503 overloaded` + `Retry-After`.
    pub shed: usize,
    /// Responses on metered connections that were neither a served 200
    /// nor a well-formed shed — must be 0.
    pub client_errors: u64,
    /// Wire-level protocol errors the server observed — must be 0 (the
    /// phase's faults delay bytes, they never corrupt them).
    pub protocol_errors: u64,
    /// Clients still unfinished at the phase deadline — must be 0.
    pub wedged: usize,
    /// Faults the chaos proxy injected.
    pub faults_injected: u64,
    /// Same-wire-path latency with a single client (the baseline).
    pub uncontended: LatencySummary,
    /// Client-measured latency of accepted requests under overload.
    pub accepted_latency: LatencySummary,
    /// Client-measured latency of shed responses.
    pub shed_latency: LatencySummary,
    /// `accepted p99 / uncontended p99` — the queue-bounding headline.
    pub p99_ratio: f64,
    /// Accepted (served) requests per second over the contended window.
    pub goodput_per_sec: f64,
    /// Contended window wall clock, seconds.
    pub elapsed_s: f64,
}

impl ToJson for OverloadReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("clients".into(), Json::num(self.clients as f64)),
            ("chaos_clients".into(), Json::num(self.chaos_clients as f64)),
            (
                "server_workers".into(),
                Json::num(self.server_workers as f64),
            ),
            ("offered".into(), Json::num(self.offered as f64)),
            ("accepted".into(), Json::num(self.accepted as f64)),
            ("shed".into(), Json::num(self.shed as f64)),
            ("client_errors".into(), Json::num(self.client_errors as f64)),
            (
                "protocol_errors".into(),
                Json::num(self.protocol_errors as f64),
            ),
            ("wedged".into(), Json::num(self.wedged as f64)),
            (
                "faults_injected".into(),
                Json::num(self.faults_injected as f64),
            ),
            ("uncontended".into(), self.uncontended.to_json()),
            ("accepted_latency".into(), self.accepted_latency.to_json()),
            ("shed_latency".into(), self.shed_latency.to_json()),
            ("p99_ratio".into(), Json::Num(self.p99_ratio)),
            ("goodput_per_sec".into(), Json::Num(self.goodput_per_sec)),
            ("elapsed_s".into(), Json::Num(self.elapsed_s)),
        ])
    }
}

/// The full benchmark report.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// The parameters the run used.
    pub params: ThroughputParams,
    /// `threads · sessions_per_thread`.
    pub concurrent_sessions: usize,
    /// Total answers applied in the interactive phase.
    pub total_answers: usize,
    /// The measured phases.
    pub phases: Vec<PhaseReport>,
    /// Per-session resident memory, sampled after the interactive phase
    /// while all sessions are live and fully answered.
    pub session_memory: ManagerStats,
    /// Restore latency as a function of history length (the `restore`
    /// phase, bucketed).
    pub restore_vs_history: Vec<RestoreByHistory>,
    /// The decision-cache fleet phase (cold vs warm first questions).
    pub fleet: FleetReport,
    /// The hibernation phase (park + wake the interactive fleet).
    pub hibernate: HibernateReport,
    /// The durability phase (WAL overhead + timed recovery).
    pub durability: DurabilityReport,
    /// The transport phase (the workload over loopback HTTP).
    pub transport: TransportReport,
    /// The overload phase (load shedding under chaos-proxied pressure).
    pub overload: OverloadReport,
}

impl ToJson for ThroughputReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("bench".into(), Json::str("server_throughput")),
            ("instance".into(), Json::str("flight_hotel")),
            ("threads".into(), Json::num(self.params.threads as f64)),
            (
                "sessions_per_thread".into(),
                Json::num(self.params.sessions_per_thread as f64),
            ),
            (
                "concurrent_sessions".into(),
                Json::num(self.concurrent_sessions as f64),
            ),
            ("shards".into(), Json::num(self.params.shards as f64)),
            ("seed".into(), Json::num(self.params.seed as f64)),
            ("total_answers".into(), Json::num(self.total_answers as f64)),
            (
                "session_memory".into(),
                Json::Obj(vec![
                    (
                        "sessions".into(),
                        Json::num(self.session_memory.sessions as f64),
                    ),
                    (
                        "resident_sessions".into(),
                        Json::num(self.session_memory.resident_sessions as f64),
                    ),
                    (
                        "hibernated_sessions".into(),
                        Json::num(self.session_memory.hibernated_sessions as f64),
                    ),
                    (
                        "state_bytes_total".into(),
                        Json::num(self.session_memory.state_bytes as f64),
                    ),
                    (
                        "state_bytes_per_session".into(),
                        Json::Num(self.session_memory.state_bytes_per_session()),
                    ),
                    (
                        "resident_bytes_total".into(),
                        Json::num(self.session_memory.resident_bytes as f64),
                    ),
                    (
                        "resident_bytes_per_session".into(),
                        Json::Num(self.session_memory.resident_bytes_per_session()),
                    ),
                    (
                        "history_bytes_total".into(),
                        Json::num(self.session_memory.history_bytes as f64),
                    ),
                    (
                        "hibernated_bytes_total".into(),
                        Json::num(self.session_memory.hibernated_bytes as f64),
                    ),
                    (
                        "decision_cache".into(),
                        cache_json(&self.session_memory.decision_cache),
                    ),
                ]),
            ),
            ("phases".into(), Json::arr(&self.phases)),
            (
                "restore_vs_history".into(),
                Json::arr(&self.restore_vs_history),
            ),
            ("fleet".into(), self.fleet.to_json()),
            ("hibernate".into(), self.hibernate.to_json()),
            ("durability".into(), self.durability.to_json()),
            ("transport".into(), self.transport.to_json()),
            ("overload".into(), self.overload.to_json()),
        ])
    }
}

impl ThroughputReport {
    /// Renders the phases as an aligned plain-text table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} sessions ({} threads × {}), {} shards, {} interactive answers",
            self.concurrent_sessions,
            self.params.threads,
            self.params.sessions_per_thread,
            self.params.shards,
            self.total_answers,
        );
        let _ = writeln!(
            out,
            "session memory: {:.0} B derived state/session ({} B total), {} B history total",
            self.session_memory.state_bytes_per_session(),
            self.session_memory.state_bytes,
            self.session_memory.history_bytes,
        );
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "phase", "ops", "ops/s", "mean µs", "p50 µs", "p95 µs", "p99 µs", "max µs"
        );
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>12.0} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                p.name,
                p.latency.count,
                p.ops_per_sec,
                p.latency.mean_us,
                p.latency.p50_us,
                p.latency.p95_us,
                p.latency.p99_us,
                p.latency.max_us,
            );
        }
        let _ = writeln!(
            out,
            "fleet ({} / {}): first question cold {:.1} µs mean ({} sessions) vs warm {:.3} µs \
             mean ({} sessions) — {:.0}× ({} hits / {} misses, {} B cache of {} B budget)",
            self.fleet.instance,
            self.fleet.strategy,
            self.fleet.cold_first_question.mean_us,
            self.fleet.cold_sessions,
            self.fleet.warm_first_question.mean_us,
            self.fleet.warm_sessions,
            self.fleet.warm_speedup,
            self.fleet.cache.hits,
            self.fleet.cache.misses,
            self.fleet.cache.bytes,
            self.fleet.cache.budget_bytes,
        );
        let _ = writeln!(
            out,
            "hibernate: {} of {} sessions parked, {:.0} B resident → {:.0} B parked per \
             session; wake mean {:.1} µs / p50 {:.1} µs",
            self.hibernate.parked,
            self.hibernate.sessions,
            self.hibernate.resident_bytes_per_session,
            self.hibernate.hibernated_bytes_per_session,
            self.hibernate.wake.mean_us,
            self.hibernate.wake.p50_us,
        );
        let _ = writeln!(
            out,
            "durability: group-commit {:.1} µs/answer ({:.2}× throughput cost, {} fsyncs \
             / {} records), fsync-per-record {:.1} µs ({:.2}×); recovery {} sessions \
             ({} spilled, {} WAL records) in {:.1} ms — {:.0} sessions/s",
            self.durability.wal_group.latency.mean_us,
            self.durability.overhead_group_x,
            self.durability.wal_syncs,
            self.durability.wal_records,
            self.durability.wal_sync.latency.mean_us,
            self.durability.overhead_sync_x,
            self.durability.recovery.sessions,
            self.durability.recovery.spilled,
            self.durability.recovery.wal_records,
            self.durability.recovery.elapsed_ms,
            self.durability.recovery.sessions_per_sec,
        );
        let _ = writeln!(
            out,
            "transport: {} concurrent HTTP sessions ({} open at peak, {} client threads → \
             {} server workers), {} requests at {:.0} req/s; mean {:.1} µs / p95 {:.1} µs, \
             {} restored over the wire, {} protocol errors",
            self.transport.sessions,
            self.transport.open_connections_peak,
            self.transport.client_threads,
            self.transport.server_workers,
            self.transport.requests,
            self.transport.requests_per_sec,
            self.transport.request_latency.mean_us,
            self.transport.request_latency.p95_us,
            self.transport.restored,
            self.transport.protocol_errors,
        );
        let _ = writeln!(
            out,
            "overload: {} clients (+{} chaos) → {} workers via chaos proxy; {} offered, \
             {} accepted at {:.0}/s (p99 {:.1} µs, {:.2}× uncontended), {} shed at mean \
             {:.1} µs; {} wedged, {} client errors, {} protocol errors, {} faults injected",
            self.overload.clients,
            self.overload.chaos_clients,
            self.overload.server_workers,
            self.overload.offered,
            self.overload.accepted,
            self.overload.goodput_per_sec,
            self.overload.accepted_latency.p99_us,
            self.overload.p99_ratio,
            self.overload.shed,
            self.overload.shed_latency.mean_us,
            self.overload.wedged,
            self.overload.client_errors,
            self.overload.protocol_errors,
            self.overload.faults_injected,
        );
        out
    }
}

/// The per-session setup the phases share: strategy mix + goal oracle.
struct SessionPlan {
    config: StrategyConfig,
    goal: BitSet,
}

fn plans(universe: &Universe, n: usize, seed: u64) -> Vec<SessionPlan> {
    let goals =
        jqi_core::lattice::non_nullable_predicates(universe, 100_000).expect("tiny lattice");
    assert!(!goals.is_empty(), "flight & hotel has non-nullable goals");
    (0..n)
        .map(|i| {
            let config = match i % 5 {
                0 => StrategyConfig::Bu,
                1 => StrategyConfig::Td,
                2 => StrategyConfig::Lks { depth: 1 },
                3 => StrategyConfig::Lks { depth: 2 },
                _ => StrategyConfig::Rnd {
                    seed: seed ^ i as u64,
                },
            };
            SessionPlan {
                config,
                goal: goals[i % goals.len()].clone(),
            }
        })
        .collect()
}

/// One recorded session: its plan index plus the answers it gave.
type RecordedHistory = (usize, Vec<(ClassId, Label)>);

fn oracle_label(universe: &Universe, goal: &BitSet, class: ClassId) -> Label {
    if goal.is_subset(universe.sig(class)) {
        Label::Positive
    } else {
        Label::Negative
    }
}

/// Runs the three phases and assembles the report.
pub fn run(tiny: bool, params: ThroughputParams) -> ThroughputReport {
    let params = if tiny {
        ThroughputParams::tiny()
    } else {
        params
    };
    let universe = Arc::new(Universe::build(flight_hotel()));
    let total_sessions = params.threads * params.sessions_per_thread;
    let plans = plans(&universe, total_sessions, params.seed);
    let manager = Arc::new(SessionManager::new(
        Arc::clone(&universe),
        ServerConfig {
            shards: params.shards,
            ..ServerConfig::default()
        },
    ));

    // All sessions exist before any is driven: the interactive phase
    // exercises `total_sessions` *concurrent* sessions, not a trickle.
    let ids: Vec<u64> = plans
        .iter()
        .map(|p| manager.create_session(p.config.clone()).expect("in-memory"))
        .collect();
    assert_eq!(manager.session_count(), total_sessions);

    // Phase 1: interactive question/answer loops, one slice per thread.
    let phase_start = Instant::now();
    let mut latencies: Vec<Vec<u64>> = Vec::with_capacity(params.threads);
    let mut histories: Vec<Vec<RecordedHistory>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..params.threads)
            .map(|t| {
                let manager = Arc::clone(&manager);
                let universe = Arc::clone(&universe);
                let plans = &plans;
                let ids = &ids;
                scope.spawn(move || {
                    let lo = t * params.sessions_per_thread;
                    let hi = lo + params.sessions_per_thread;
                    let mut lat = Vec::new();
                    let mut recorded = Vec::new();
                    for i in lo..hi {
                        let id = ids[i];
                        loop {
                            // One timed sample = the full service cycle:
                            // question selection (strategy work under the
                            // session lock) plus the answer's incremental
                            // state update.
                            let t0 = Instant::now();
                            let q = match manager.next_question(id).expect("live session") {
                                Some(q) => q,
                                None => break,
                            };
                            let label = oracle_label(&universe, &plans[i].goal, q.class);
                            manager.answer(id, q.class, label).expect("consistent");
                            lat.push(t0.elapsed().as_nanos() as u64);
                        }
                        let snap = manager.snapshot(id).expect("live session");
                        recorded.push((i, snap.history));
                    }
                    (lat, recorded)
                })
            })
            .collect();
        for handle in handles {
            let (lat, recorded) = handle.join().expect("no panics");
            latencies.push(lat);
            histories.push(recorded);
        }
    });
    let interactive_elapsed = phase_start.elapsed().as_secs_f64();
    let all: Vec<u64> = latencies.into_iter().flatten().collect();
    let total_answers = all.len();
    let interactive = PhaseReport {
        name: "interactive",
        elapsed_s: interactive_elapsed,
        ops_per_sec: total_answers as f64 / interactive_elapsed,
        latency: LatencySummary::of(all),
    };
    // Resident footprint while every session is live and fully answered.
    let session_memory = manager.stats();

    // Phase 2: the same answer streams folded in as one batch per fresh
    // session (the crowdsourcing arrival shape).
    let flat_histories: Vec<RecordedHistory> = histories.into_iter().flatten().collect();
    let batch_manager = Arc::new(SessionManager::new(
        Arc::clone(&universe),
        ServerConfig {
            shards: params.shards,
            ..ServerConfig::default()
        },
    ));
    let phase_start = Instant::now();
    let mut batch_lat: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let chunks = flat_histories.chunks(params.sessions_per_thread.max(1));
        let handles: Vec<_> = chunks
            .map(|chunk| {
                let manager = Arc::clone(&batch_manager);
                let plans = &plans;
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    for (i, history) in chunk {
                        let id = manager
                            .create_session(plans[*i].config.clone())
                            .expect("in-memory");
                        let t0 = Instant::now();
                        let applied = manager.answer_batch(id, history).expect("consistent");
                        lat.push(t0.elapsed().as_nanos() as u64);
                        assert_eq!(applied, history.len());
                    }
                    lat
                })
            })
            .collect();
        for handle in handles {
            batch_lat.extend(handle.join().expect("no panics"));
        }
    });
    let batch_elapsed = phase_start.elapsed().as_secs_f64();
    let batch = PhaseReport {
        name: "batch",
        elapsed_s: batch_elapsed,
        ops_per_sec: batch_lat.len() as f64 / batch_elapsed,
        latency: LatencySummary::of(batch_lat),
    };

    // Phase 3: snapshot → JSON → restore round-trips into a fresh manager,
    // verified against the original predicate.
    let restore_manager = Arc::new(SessionManager::new(
        Arc::clone(&universe),
        ServerConfig {
            shards: params.shards,
            ..ServerConfig::default()
        },
    ));
    let phase_start = Instant::now();
    let mut snap_lat: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let chunks = ids.chunks(params.sessions_per_thread.max(1));
        let handles: Vec<_> = chunks
            .map(|chunk| {
                let manager = Arc::clone(&manager);
                let restore_manager = Arc::clone(&restore_manager);
                scope.spawn(move || {
                    let mut lat = Vec::new();
                    for &id in chunk {
                        let t0 = Instant::now();
                        let json = manager.snapshot(id).expect("live").to_json_string();
                        let snap = SessionSnapshot::from_json(&json).expect("well-formed");
                        let restored = restore_manager.restore(&snap).expect("replays");
                        lat.push(t0.elapsed().as_nanos() as u64);
                        assert_eq!(
                            restore_manager.inferred_predicate(restored).expect("live"),
                            manager.inferred_predicate(id).expect("live"),
                            "restored session diverged"
                        );
                    }
                    lat
                })
            })
            .collect();
        for handle in handles {
            snap_lat.extend(handle.join().expect("no panics"));
        }
    });
    let snap_elapsed = phase_start.elapsed().as_secs_f64();
    let snapshot = PhaseReport {
        name: "snapshot",
        elapsed_s: snap_elapsed,
        ops_per_sec: snap_lat.len() as f64 / snap_elapsed,
        latency: LatencySummary::of(snap_lat),
    };

    // Phase 4: the restore half alone — deterministic replay folded through
    // `apply_batch` mask ops, no JSON on the path — bucketed by history
    // length so replay cost reads as a function of session age.
    let snapshots: Vec<_> = ids
        .iter()
        .map(|&id| manager.snapshot(id).expect("live session"))
        .collect();
    let replay_manager = Arc::new(SessionManager::new(
        Arc::clone(&universe),
        ServerConfig {
            shards: params.shards,
            ..ServerConfig::default()
        },
    ));
    let phase_start = Instant::now();
    let mut restore_lat: Vec<(usize, u64)> = Vec::with_capacity(snapshots.len());
    std::thread::scope(|scope| {
        let chunks = snapshots.chunks(params.sessions_per_thread.max(1));
        let handles: Vec<_> = chunks
            .map(|chunk| {
                let manager = Arc::clone(&replay_manager);
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(chunk.len());
                    for snap in chunk {
                        let t0 = Instant::now();
                        manager.restore(snap).expect("replays");
                        lat.push((snap.history.len(), t0.elapsed().as_nanos() as u64));
                    }
                    lat
                })
            })
            .collect();
        for handle in handles {
            restore_lat.extend(handle.join().expect("no panics"));
        }
    });
    let restore_elapsed = phase_start.elapsed().as_secs_f64();
    let mut buckets: BTreeMap<usize, (usize, u64)> = BTreeMap::new();
    for &(len, ns) in &restore_lat {
        let e = buckets.entry(len).or_insert((0, 0));
        e.0 += 1;
        e.1 += ns;
    }
    let restore_vs_history = buckets
        .into_iter()
        .map(|(history_len, (count, total_ns))| RestoreByHistory {
            history_len,
            count,
            mean_us: total_ns as f64 / count as f64 / 1000.0,
        })
        .collect();
    let restore = PhaseReport {
        name: "restore",
        elapsed_s: restore_elapsed,
        ops_per_sec: restore_lat.len() as f64 / restore_elapsed,
        latency: LatencySummary::of(restore_lat.into_iter().map(|(_, ns)| ns).collect()),
    };

    // Phase 5: the decision cache under an LkS fleet on TPC-H — cold
    // (cache disabled, every session pays the full first-question
    // lookahead) vs warm (shared cache; the first session computes, the
    // rest probe).
    let fleet = fleet_phase(tiny, params.seed);

    // Phase 6: hibernation — park the fully-answered interactive fleet,
    // then touch every session once so the wake path (lazy
    // re-materialization by replay) is measured at fleet scale.
    let parked = manager
        .hibernate_idle(Duration::ZERO)
        .expect("in-memory")
        .parked;
    let parked_stats = manager.stats();
    let mut wake_lat: Vec<u64> = Vec::with_capacity(ids.len());
    for &id in &ids {
        let t0 = Instant::now();
        let _ = manager.next_question(id).expect("live session");
        wake_lat.push(t0.elapsed().as_nanos() as u64);
    }
    let hibernate = HibernateReport {
        sessions: total_sessions,
        parked,
        resident_bytes_per_session: session_memory.resident_bytes_per_session(),
        state_bytes_per_session: session_memory.state_bytes_per_session(),
        hibernated_bytes_per_session: parked_stats.hibernated_bytes_per_session(),
        wake: LatencySummary::of(wake_lat),
    };

    // Phase 7: durability — the interactive workload again, this time
    // with a real WAL (and spill segments) under it, then a timed
    // recovery of the whole fleet.
    let durability = durability_phase(&params, &universe, &plans, &interactive);

    // Phase 8: transport — the workload over loopback HTTP through the
    // `jqi_net` server and the gateway, one keep-alive connection per
    // session, all open at once.
    let transport = transport_phase(&params, &universe, &plans);

    // Phase 9: overload — more load than the worker pool can serve,
    // offered through the chaos proxy against tight admission
    // thresholds; measures the shedder, not the service.
    let overload = overload_phase(tiny, params.seed);

    ThroughputReport {
        params,
        concurrent_sessions: total_sessions,
        total_answers,
        phases: vec![interactive, batch, snapshot, restore],
        session_memory,
        restore_vs_history,
        fleet,
        hibernate,
        durability,
        transport,
        overload,
    }
}

/// Drives the overload phase (see [`OverloadReport`]).
///
/// Topology: a 2-worker gateway with `queue_soft: 2` / `queue_hard`
/// above the client count, reached only through a [`jqi_net::ChaosProxy`]
/// whose script delays one connection and drip-feeds another (the two
/// unmetered chaos clients) and relays the rest untouched. One clean
/// client measures the uncontended baseline first; then every metered
/// client gets its own session and alternates a read (`GET` session
/// status — sheds past the soft threshold) with a write (`POST` an empty
/// answer batch — admitted up to the hard threshold), so under pressure
/// both outcomes occur: writes land, reads shed. Metered clients run a
/// fixed request budget, extended (bounded) until the fleet has
/// collectively seen a minimum number of sheds, so the shed-latency
/// summary is never empty on a fast machine.
fn overload_phase(tiny: bool, seed: u64) -> OverloadReport {
    use jqi_datagen::tpch::{workload, TpchJoin, TpchScale};
    use jqi_net::{ChaosProxy, ChaosScript, Client, Fault, NetConfig};
    use jqi_server::http::{serve_with, OverloadConfig, UniverseRegistry};
    use jqi_server::json::Json as Wire;
    use std::sync::atomic::{AtomicU64, Ordering};

    // 2× offered load: twice as many always-outstanding clients as
    // worker threads — the acceptance shape. The request mix is create →
    // first LkS question on a cold-cache TPC-H universe, so every
    // accepted read is milliseconds of real lookahead compute: the
    // accepted p99 then tracks the queue an admitted request waits
    // behind (what the shedder bounds), not per-request scheduler noise.
    let (clients_n, per_client, uncontended_n) = if tiny { (8, 40, 12) } else { (8, 200, 60) };
    let chaos_clients_n = 2usize;
    let min_shed = 25u64;
    let wedge_deadline = Duration::from_secs(30);
    let strategy_body = "{\"strategy\": \"LKS:2\"}";

    let tpch = workload(TpchScale::Small, TpchJoin::Join4, seed);
    let universe = Arc::new(Universe::build(tpch.instance).with_decision_cache_budget(0));
    let registry = Arc::new(UniverseRegistry::new());
    registry
        .register(
            "bench",
            Arc::new(SessionManager::new(
                Arc::clone(&universe),
                ServerConfig::default(),
            )),
        )
        .expect("fresh registry");
    // Twice as many clients as workers (the 2× offered shape). The
    // soft tier admits at most a couple of expensive reads at once, so
    // the spare workers stay free to write sheds immediately instead of
    // queueing them behind a lookahead in progress.
    let net = NetConfig {
        workers: 4,
        max_connections: clients_n + chaos_clients_n + 16,
        ..NetConfig::default()
    };
    let server_workers = net.workers;
    let overload = OverloadConfig {
        // Reads shed once more than two wake-ups are in flight; writes
        // once more than six are. Both tiers bound the queue an
        // accepted request waits behind — that bound, not the offered
        // load, is what the accepted p99 tracks (the p99_ratio
        // acceptance bar).
        queue_soft: 2,
        queue_hard: 6,
        retry_after_s: 1,
        ..OverloadConfig::default()
    };
    let (mut server, _gateway) =
        serve_with(Arc::clone(&registry), "127.0.0.1:0", net, overload).expect("loopback bind");
    // Connection 0 is the clean uncontended baseline; 1 and 2 are the
    // chaos clients' (delayed, dripping); everything after runs clean.
    let script = ChaosScript {
        seed: 0x10AD,
        faults: vec![
            Fault::None,
            Fault::Delay { ms: 10 },
            Fault::Drip { chunk: 16, ms: 1 },
        ],
    };
    let mut proxy = ChaosProxy::spawn(server.local_addr(), script).expect("proxy bind");
    let addr = proxy.local_addr();

    fn classify(resp: &jqi_net::ClientResponse) -> Result<bool, String> {
        // Ok(true) = served, Ok(false) = well-formed shed, Err = neither.
        let doc = resp
            .body_str()
            .ok()
            .and_then(|t| Wire::parse(t).ok())
            .ok_or_else(|| format!("unparseable body at status {}", resp.status))?;
        match resp.status {
            200 | 201 => Ok(true),
            503 => {
                let code = doc
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Wire::as_str);
                let hinted = resp.headers.iter().any(|(n, _)| n == "retry-after");
                if code == Some("overloaded") && hinted {
                    Ok(false)
                } else {
                    Err(format!("503 without shed shape: {:?}", resp.body_str()))
                }
            }
            other => Err(format!("unexpected status {other}: {:?}", resp.body_str())),
        }
    }

    // Pulls the session id out of a 201 create response.
    fn created_sid(resp: &jqi_net::ClientResponse) -> Option<u64> {
        resp.body_str()
            .ok()
            .and_then(|t| Wire::parse(t).ok())
            .and_then(|doc| doc.get("session").and_then(Wire::as_num))
            .map(|n| n as u64)
    }

    // Uncontended baseline: one client, same wire path and request mix,
    // no competition. Each GET is a fresh session's first question, so
    // with the decision cache off every one pays the full lookahead.
    let mut baseline_lat: Vec<u64> = Vec::with_capacity(uncontended_n);
    let mut base = Client::connect(addr).expect("baseline connect");
    let mut base_sid = 0u64;
    for r in 0..uncontended_n {
        let t0 = Instant::now();
        let resp = if r % 2 == 0 {
            base.post("/v1/universes/bench/sessions", strategy_body)
        } else {
            base.get(&format!("/v1/universes/bench/sessions/{base_sid}/question"))
        }
        .expect("baseline request");
        baseline_lat.push(t0.elapsed().as_nanos() as u64);
        assert!(
            classify(&resp).expect("baseline must be clean"),
            "the uncontended pass must never shed"
        );
        if resp.status == 201 {
            base_sid = created_sid(&resp).expect("session id");
        }
    }
    let uncontended = LatencySummary::of(baseline_lat);

    // Connect everything up front, in order, so chaos connection indexes
    // are deterministic; each metered client gets its own session while
    // the wire is still calm.
    let chaos_conns: Vec<Client> = (0..chaos_clients_n)
        .map(|_| Client::connect(addr).expect("chaos connect"))
        .collect();
    let metered: Vec<(Client, u64)> = (0..clients_n)
        .map(|_| {
            let mut client = Client::connect(addr).expect("metered connect");
            let created = client
                .post("/v1/universes/bench/sessions", strategy_body)
                .expect("metered create");
            assert_eq!(created.status, 201, "{:?}", created.body_str());
            let sid = created_sid(&created).expect("session id");
            (client, sid)
        })
        .collect();

    let shed_total = AtomicU64::new(0);
    let phase_start = Instant::now();
    let mut accepted_lat: Vec<u64> = Vec::new();
    let mut shed_lat: Vec<u64> = Vec::new();
    let mut client_errors = 0u64;
    let mut wedged = 0usize;
    std::thread::scope(|scope| {
        // Chaos clients: unmetered read pressure over faulted
        // connections. They may be shed or served; they must finish.
        let chaos_handles: Vec<_> = chaos_conns
            .into_iter()
            .map(|mut client| {
                scope.spawn(move || {
                    let started = Instant::now();
                    let mut errors = 0u64;
                    for _ in 0..per_client / 2 {
                        match client.get("/v1/universes") {
                            Ok(resp) if classify(&resp).is_ok() => {}
                            _ => errors += 1,
                        }
                        // Paced: the chaos connections exist to push
                        // faulted bytes through the path, not to add
                        // offered load on top of the metered fleet.
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    (errors, started.elapsed())
                })
            })
            .collect();
        let metered_handles: Vec<_> = metered
            .into_iter()
            .map(|(mut client, mut sid)| {
                let shed_total = &shed_total;
                scope.spawn(move || {
                    let started = Instant::now();
                    let mut accepted = Vec::new();
                    let mut shed = Vec::new();
                    let mut errors = 0u64;
                    for r in 0..per_client * 4 {
                        // Past the base budget, keep offering load only
                        // until the fleet has its minimum shed sample.
                        if r >= per_client && shed_total.load(Ordering::Relaxed) >= min_shed {
                            break;
                        }
                        let t0 = Instant::now();
                        // Mutating create, then the cold first question
                        // on the session it made — the expensive read
                        // the soft tier sheds first.
                        let outcome = if r % 2 == 0 {
                            client.post("/v1/universes/bench/sessions", strategy_body)
                        } else {
                            client.get(&format!("/v1/universes/bench/sessions/{sid}/question"))
                        };
                        let elapsed = t0.elapsed().as_nanos() as u64;
                        match outcome {
                            Err(_) => errors += 1,
                            Ok(resp) => match classify(&resp) {
                                Ok(true) => {
                                    accepted.push(elapsed);
                                    if resp.status == 201 {
                                        sid = created_sid(&resp).unwrap_or(sid);
                                    }
                                }
                                Ok(false) => {
                                    shed.push(elapsed);
                                    shed_total.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => errors += 1,
                            },
                        }
                    }
                    (accepted, shed, errors, started.elapsed())
                })
            })
            .collect();
        for handle in chaos_handles {
            let (errors, elapsed) = handle.join().expect("no panics");
            client_errors += errors;
            if elapsed > wedge_deadline {
                wedged += 1;
            }
        }
        for handle in metered_handles {
            let (accepted, shed, errors, elapsed) = handle.join().expect("no panics");
            accepted_lat.extend(accepted);
            shed_lat.extend(shed);
            client_errors += errors;
            if elapsed > wedge_deadline {
                wedged += 1;
            }
        }
    });
    let elapsed_s = phase_start.elapsed().as_secs_f64();
    let chaos_stats = proxy.stats();
    let net_stats = server.stats();
    proxy.shutdown();
    server.shutdown();

    let offered = accepted_lat.len() + shed_lat.len() + client_errors as usize;
    let accepted = accepted_lat.len();
    let shed = shed_lat.len();
    assert!(
        accepted > 0,
        "the overload mix must land some writes (all {offered} offered requests shed)"
    );
    assert!(
        shed > 0,
        "the overload mix must shed some reads (all {offered} offered requests served)"
    );
    let accepted_latency = LatencySummary::of(accepted_lat);
    let shed_latency = LatencySummary::of(shed_lat);
    OverloadReport {
        clients: clients_n,
        chaos_clients: chaos_clients_n,
        server_workers,
        offered,
        accepted,
        shed,
        client_errors,
        protocol_errors: net_stats.protocol_errors,
        wedged,
        faults_injected: chaos_stats.faults_injected,
        p99_ratio: accepted_latency.p99_us / uncontended.p99_us,
        goodput_per_sec: accepted as f64 / elapsed_s,
        uncontended,
        accepted_latency,
        shed_latency,
        elapsed_s,
    }
}

/// Drives the full session lifecycle over loopback HTTP: every session
/// gets its own keep-alive connection, all `threads ×
/// sessions_per_thread` connections are held open concurrently, and each
/// session runs create → question/answer to completion → snapshot →
/// restore into a twin tenant, timing every request from first byte
/// written to full response read. `open_connections_peak` is sampled
/// from live [`jqi_net::NetStats`] at a barrier while every client is
/// still connected, so the reported concurrency is observed, not
/// assumed.
fn transport_phase(
    params: &ThroughputParams,
    universe: &Arc<Universe>,
    plans: &[SessionPlan],
) -> TransportReport {
    use jqi_net::{Client, NetConfig};
    use jqi_server::http::{serve, UniverseRegistry};
    use jqi_server::json::Json as Wire;
    use std::sync::Barrier;

    let sessions = params.threads * params.sessions_per_thread;
    let server_config = ServerConfig {
        shards: params.shards,
        ..ServerConfig::default()
    };
    let registry = Arc::new(UniverseRegistry::new());
    registry
        .register(
            "bench",
            Arc::new(SessionManager::new(
                Arc::clone(universe),
                server_config.clone(),
            )),
        )
        .expect("fresh registry");
    registry
        .register(
            "twin",
            Arc::new(SessionManager::new(
                Arc::clone(universe),
                server_config.clone(),
            )),
        )
        .expect("fresh registry");
    let net = NetConfig {
        max_connections: sessions + 64,
        ..NetConfig::default()
    };
    let server_workers = net.workers;
    let (mut server, _gateway) =
        serve(Arc::clone(&registry), "127.0.0.1:0", net).expect("loopback bind");
    let addr = server.local_addr();

    fn text(resp: &jqi_net::ClientResponse) -> &str {
        resp.body_str().expect("utf-8 response")
    }

    // Rendezvous twice: once with every connection still open (main
    // samples the server's live stats), once to release the clients.
    let barrier = Barrier::new(params.threads + 1);
    let phase_start = Instant::now();
    let mut latencies: Vec<Vec<u64>> = Vec::with_capacity(params.threads);
    let mut restored = 0usize;
    let mut open_connections_peak = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..params.threads)
            .map(|t| {
                let universe = Arc::clone(universe);
                let barrier = &barrier;
                scope.spawn(move || {
                    let lo = t * params.sessions_per_thread;
                    let mut lat = Vec::new();
                    let mut clients: Vec<Client> = (0..params.sessions_per_thread)
                        .map(|_| Client::connect(addr).expect("loopback connect"))
                        .collect();

                    // Create: one session per connection.
                    let mut sids: Vec<u64> = Vec::with_capacity(clients.len());
                    for (k, client) in clients.iter_mut().enumerate() {
                        let body = format!("{{\"strategy\": \"{}\"}}", plans[lo + k].config);
                        let t0 = Instant::now();
                        let resp = client
                            .post("/v1/universes/bench/sessions", &body)
                            .expect("create over http");
                        lat.push(t0.elapsed().as_nanos() as u64);
                        assert_eq!(resp.status, 201, "{}", text(&resp));
                        let doc = Wire::parse(text(&resp)).expect("json body");
                        sids.push(
                            doc.get("session").and_then(Wire::as_num).expect("session") as u64
                        );
                    }

                    // Drive sessions round-robin (one question per visit)
                    // so the whole slice stays in flight together.
                    let mut done = vec![false; clients.len()];
                    let mut live = clients.len();
                    while live > 0 {
                        for k in 0..clients.len() {
                            if done[k] {
                                continue;
                            }
                            let path = format!("/v1/universes/bench/sessions/{}/question", sids[k]);
                            let t0 = Instant::now();
                            let resp = clients[k].get(&path).expect("question over http");
                            lat.push(t0.elapsed().as_nanos() as u64);
                            assert_eq!(resp.status, 200, "{}", text(&resp));
                            let doc = Wire::parse(text(&resp)).expect("json body");
                            if doc.get("done") == Some(&Wire::Bool(true)) {
                                done[k] = true;
                                live -= 1;
                                continue;
                            }
                            let class = doc
                                .get("question")
                                .and_then(|q| q.get("class"))
                                .and_then(Wire::as_num)
                                .expect("open question")
                                as ClassId;
                            let label = match oracle_label(&universe, &plans[lo + k].goal, class) {
                                Label::Positive => "+",
                                Label::Negative => "-",
                            };
                            let body = format!(
                                "{{\"answers\": [{{\"class\": {class}, \"label\": \"{label}\"}}]}}"
                            );
                            let path = format!("/v1/universes/bench/sessions/{}/answers", sids[k]);
                            let t0 = Instant::now();
                            let resp = clients[k].post(&path, &body).expect("answer over http");
                            lat.push(t0.elapsed().as_nanos() as u64);
                            assert_eq!(resp.status, 200, "{}", text(&resp));
                        }
                    }

                    // Snapshot each finished session, restore it into the
                    // twin tenant over the same connection.
                    let mut thread_restored = 0usize;
                    for (k, client) in clients.iter_mut().enumerate() {
                        let path = format!("/v1/universes/bench/sessions/{}/snapshot", sids[k]);
                        let t0 = Instant::now();
                        let snap = client.get(&path).expect("snapshot over http");
                        lat.push(t0.elapsed().as_nanos() as u64);
                        assert_eq!(snap.status, 200, "{}", text(&snap));
                        let body = text(&snap).to_string();
                        let t0 = Instant::now();
                        let resp = client
                            .post("/v1/universes/twin/restore", &body)
                            .expect("restore over http");
                        lat.push(t0.elapsed().as_nanos() as u64);
                        assert_eq!(resp.status, 201, "{}", text(&resp));
                        thread_restored += 1;
                    }

                    barrier.wait(); // work done, every connection still open
                    barrier.wait(); // main has sampled open_connections
                    (lat, thread_restored)
                })
            })
            .collect();

        barrier.wait();
        open_connections_peak = server.stats().open_connections;
        barrier.wait();

        for handle in handles {
            let (lat, thread_restored) = handle.join().expect("no panics");
            latencies.push(lat);
            restored += thread_restored;
        }
    });
    let elapsed_s = phase_start.elapsed().as_secs_f64();
    let net_stats = server.stats();
    server.shutdown();

    let all: Vec<u64> = latencies.into_iter().flatten().collect();
    let requests = all.len();
    TransportReport {
        sessions,
        client_threads: params.threads,
        server_workers,
        requests,
        elapsed_s,
        requests_per_sec: requests as f64 / elapsed_s,
        request_latency: LatencySummary::of(all),
        open_connections_peak,
        restored,
        protocol_errors: net_stats.protocol_errors,
    }
}

const GROUP_EVERY: usize = 2048;

fn durability_config(group_commit_every: usize) -> DurabilityConfig {
    DurabilityConfig {
        group_commit_every,
        // Zero watermark: a sweep spills every parked session, so the
        // recovery measurement covers segment reads, not just WAL replay.
        resident_watermark_bytes: Some(0),
        segment_max_bytes: 4 << 20,
    }
}

/// The interactive workload on a durable manager rooted at `dir`: same
/// fleet shape and thread layout as the in-memory interactive phase, so
/// the per-answer means are directly comparable. Returns the phase
/// report and the (still live) manager.
fn durable_drive(
    name: &'static str,
    params: &ThroughputParams,
    universe: &Arc<Universe>,
    plans: &[SessionPlan],
    dir: &std::path::Path,
    group_commit_every: usize,
) -> (PhaseReport, SessionManager) {
    let (manager, _) = SessionManager::recover(
        Arc::clone(universe),
        ServerConfig {
            shards: params.shards,
            ..ServerConfig::default()
        },
        durability_config(group_commit_every),
        dir,
    )
    .expect("fresh durable fleet");
    let manager = Arc::new(manager);
    let ids: Vec<u64> = plans
        .iter()
        .map(|p| {
            manager
                .create_session(p.config.clone())
                .expect("durable create")
        })
        .collect();
    let phase_start = Instant::now();
    let mut latencies: Vec<Vec<u64>> = Vec::with_capacity(params.threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..params.threads)
            .map(|t| {
                let manager = Arc::clone(&manager);
                let universe = Arc::clone(universe);
                let ids = &ids;
                scope.spawn(move || {
                    let lo = t * params.sessions_per_thread;
                    let hi = lo + params.sessions_per_thread;
                    let mut lat = Vec::new();
                    for i in lo..hi {
                        let id = ids[i];
                        loop {
                            let t0 = Instant::now();
                            let q = match manager.next_question(id).expect("live session") {
                                Some(q) => q,
                                None => break,
                            };
                            let label = oracle_label(&universe, &plans[i].goal, q.class);
                            manager.answer(id, q.class, label).expect("consistent");
                            lat.push(t0.elapsed().as_nanos() as u64);
                        }
                    }
                    lat
                })
            })
            .collect();
        for handle in handles {
            latencies.push(handle.join().expect("no panics"));
        }
    });
    // The batch the group-commit quota had not yet synced is part of the
    // workload's durability cost: flush inside the timed region so ops/s
    // stays honest.
    manager.flush_wal().expect("wal flush");
    let elapsed = phase_start.elapsed().as_secs_f64();
    let all: Vec<u64> = latencies.into_iter().flatten().collect();
    let report = PhaseReport {
        name,
        elapsed_s: elapsed,
        ops_per_sec: all.len() as f64 / elapsed,
        latency: LatencySummary::of(all),
    };
    let manager = Arc::into_inner(manager).expect("worker threads joined");
    (report, manager)
}

/// Runs the durability phase (see the module docs). `in_memory` is the
/// in-memory interactive phase's report — the overhead baseline.
fn durability_phase(
    params: &ThroughputParams,
    universe: &Arc<Universe>,
    plans: &[SessionPlan],
    in_memory: &PhaseReport,
) -> DurabilityReport {
    let root =
        std::env::temp_dir().join(format!("jqi-throughput-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Group commit — the recommended configuration, and the directory the
    // recovery measurement uses.
    let group_dir = root.join("group");
    let (wal_group, manager) = durable_drive(
        "wal_group",
        params,
        universe,
        plans,
        &group_dir,
        GROUP_EVERY,
    );
    // Park and spill the whole fleet so recovery exercises segment reads
    // and WAL replay together, then "crash" (drop without ceremony — the
    // data is already synced, which is the point).
    manager
        .hibernate_idle(Duration::ZERO)
        .expect("park the fleet");
    manager.sweep().expect("spill the fleet");
    let stats = manager.stats();
    let wal_stats = stats.durability.expect("durable manager has wal stats");
    drop(manager);

    let recover_start = Instant::now();
    let (recovered, recovery_report) = SessionManager::recover(
        Arc::clone(universe),
        ServerConfig {
            shards: params.shards,
            ..ServerConfig::default()
        },
        durability_config(GROUP_EVERY),
        &group_dir,
    )
    .expect("recovery of a cleanly synced fleet");
    let elapsed_ms = recover_start.elapsed().as_secs_f64() * 1000.0;
    assert_eq!(recovery_report.sessions, plans.len());
    drop(recovered);

    // fsync per record — the cost ceiling.
    let (wal_sync, sync_manager) =
        durable_drive("wal_sync", params, universe, plans, &root.join("sync"), 1);
    drop(sync_manager);
    let _ = std::fs::remove_dir_all(&root);

    DurabilityReport {
        sessions: plans.len(),
        in_memory_mean_us: in_memory.latency.mean_us,
        overhead_group_x: in_memory.ops_per_sec / wal_group.ops_per_sec,
        overhead_sync_x: in_memory.ops_per_sec / wal_sync.ops_per_sec,
        wal_records: wal_stats.wal_records,
        wal_syncs: wal_stats.wal_syncs,
        wal_bytes: wal_stats.wal_appended_bytes,
        recovery: RecoveryBench {
            sessions: recovery_report.sessions,
            spilled: recovery_report.spilled,
            wal_records: recovery_report.wal_records,
            elapsed_ms,
            sessions_per_sec: recovery_report.sessions as f64 / (elapsed_ms / 1000.0),
        },
        wal_group,
        wal_sync,
    }
}

/// Drives the cold and warm fleets of the fleet phase (see the module
/// docs): same TPC-H workload, same strategy, the only difference being
/// the universe's decision-cache budget.
fn fleet_phase(tiny: bool, seed: u64) -> FleetReport {
    use jqi_datagen::tpch::{workload, TpchJoin, TpchScale};
    let strategy = StrategyConfig::Lks { depth: 2 };
    let (cold_n, warm_n) = if tiny { (4, 16) } else { (32, 1024) };
    let workload = workload(TpchScale::Small, TpchJoin::Join4, seed);
    let warm_universe = Arc::new(Universe::build(workload.instance));
    // The cold universe is the warm one cloned (identical class ids;
    // cloning resets the cache) with caching disabled — no second
    // profile-dedup + closure build.
    let cold_universe = Arc::new((*warm_universe).clone().with_decision_cache_budget(0));
    let first_questions = |universe: &Arc<Universe>, n: usize| -> Vec<u64> {
        let manager = SessionManager::new(Arc::clone(universe), ServerConfig::default());
        let ids: Vec<u64> = (0..n)
            .map(|_| manager.create_session(strategy.clone()).expect("in-memory"))
            .collect();
        ids.iter()
            .map(|&id| {
                let t0 = Instant::now();
                let q = manager.next_question(id).expect("live session");
                assert!(q.is_some(), "the tpch fleet must have a first question");
                t0.elapsed().as_nanos() as u64
            })
            .collect()
    };
    let cold_first_question = LatencySummary::of(first_questions(&cold_universe, cold_n));
    let warm_first_question = LatencySummary::of(first_questions(&warm_universe, warm_n));
    let cache = warm_universe.decision_cache_stats();
    FleetReport {
        instance: format!("tpch {} {}", TpchScale::Small, TpchJoin::Join4),
        strategy: strategy.to_string(),
        cold_sessions: cold_n,
        warm_sessions: warm_n,
        warm_speedup: cold_first_question.mean_us / warm_first_question.mean_us,
        cold_first_question,
        warm_first_question,
        cache,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_reports_all_phases() {
        let report = run(true, ThroughputParams::default());
        assert_eq!(report.concurrent_sessions, 16);
        assert_eq!(report.phases.len(), 4);
        assert!(report.total_answers >= report.concurrent_sessions);
        for phase in &report.phases {
            assert!(phase.latency.count > 0);
            assert!(phase.latency.p50_us <= phase.latency.p95_us);
            assert!(phase.latency.p95_us <= phase.latency.max_us);
        }
        // Per-session memory was sampled while all sessions were live.
        assert_eq!(report.session_memory.sessions, 16);
        assert_eq!(report.session_memory.resident_sessions, 16);
        assert!(report.session_memory.state_bytes > 0);
        assert!(
            report.session_memory.state_bytes_per_session() <= 200.0,
            "session state ballooned: {} B/session",
            report.session_memory.state_bytes_per_session()
        );
        // The interactive mix contains deterministic strategies, so the
        // shared decision cache saw traffic and stayed inside its budget.
        let cache = &report.session_memory.decision_cache;
        assert!(cache.hits + cache.misses > 0);
        assert!(cache.bytes <= cache.budget_bytes);
        // Fleet phase: the warm fleet must beat the cold one (the real
        // margin — ≥5× — is asserted on the committed full-size run, not
        // here, where debug builds and CI noise would make it flaky).
        assert_eq!(report.fleet.cold_sessions, 4);
        assert_eq!(report.fleet.warm_sessions, 16);
        assert!(report.fleet.cache.hits >= (report.fleet.warm_sessions - 1) as u64);
        assert!(
            report.fleet.warm_speedup > 1.0,
            "warm fleet not faster than cold: {}",
            report.fleet.warm_speedup
        );
        assert!(report.fleet.cache.bytes <= report.fleet.cache.budget_bytes);
        // Hibernate phase: everything parked, parked sessions at most half
        // the resident footprint, and every wake measured.
        assert_eq!(report.hibernate.parked, 16);
        assert_eq!(report.hibernate.wake.count, 16);
        assert!(
            report.hibernate.hibernated_bytes_per_session * 2.0
                <= report.hibernate.resident_bytes_per_session,
            "parked sessions not at most half the resident bytes: {} vs {}",
            report.hibernate.hibernated_bytes_per_session,
            report.hibernate.resident_bytes_per_session
        );
        // Restore latencies are bucketed by history length and cover every
        // session.
        let restored: usize = report.restore_vs_history.iter().map(|b| b.count).sum();
        assert_eq!(restored, report.concurrent_sessions);
        assert!(report
            .restore_vs_history
            .windows(2)
            .all(|w| w[0].history_len < w[1].history_len));
        // Durability phase: both WAL configurations drove the full fleet,
        // overheads are real ratios, and recovery brought everyone back.
        let d = &report.durability;
        assert_eq!(d.sessions, 16);
        assert!(d.wal_group.latency.count >= report.concurrent_sessions);
        assert!(d.wal_sync.latency.count >= report.concurrent_sessions);
        assert!(d.overhead_group_x > 0.0 && d.overhead_sync_x > 0.0);
        assert!(d.wal_records > 0 && d.wal_syncs > 0 && d.wal_bytes > 0);
        assert_eq!(d.recovery.sessions, 16);
        assert!(
            d.recovery.spilled > 0,
            "zero watermark must spill the fleet"
        );
        assert!(d.recovery.wal_records > 0);
        assert!(d.recovery.sessions_per_sec > 0.0);
        // Transport phase: every session ran its whole lifecycle over a
        // live HTTP connection, all connections were observed open at
        // once, and the wire stayed clean.
        let t = &report.transport;
        assert_eq!(t.sessions, 16);
        assert_eq!(t.open_connections_peak, 16);
        assert_eq!(t.restored, 16);
        assert_eq!(t.protocol_errors, 0);
        // create + snapshot + restore per session, plus at least one
        // question round-trip each.
        assert!(t.requests >= 4 * t.sessions);
        assert_eq!(t.request_latency.count, t.requests);
        assert!(t.requests_per_sec > 0.0);
        // Overload phase: both outcomes occurred, nothing wedged, the
        // wire stayed clean, and sheds were fast even in a debug build.
        let o = &report.overload;
        assert_eq!(o.clients, 8);
        assert_eq!(o.offered, o.accepted + o.shed);
        assert!(o.accepted > 0 && o.shed > 0, "{o:?}");
        assert!(o.shed as u64 >= 25 || o.offered >= o.clients * 160, "{o:?}");
        assert_eq!(o.client_errors, 0, "{o:?}");
        assert_eq!(o.protocol_errors, 0, "{o:?}");
        assert_eq!(o.wedged, 0, "{o:?}");
        assert!(o.faults_injected >= 2, "{o:?}");
        assert!(o.goodput_per_sec > 0.0);
        assert!(
            o.shed_latency.mean_us < 5_000.0,
            "sheds must be fast even in debug: {:?}",
            o.shed_latency
        );
        // The JSON report carries the acceptance-relevant fields.
        let json = report.to_json().to_string_pretty();
        for needle in [
            "server_throughput",
            "concurrent_sessions",
            "interactive",
            "batch",
            "snapshot",
            "restore",
            "p95_us",
            "session_memory",
            "state_bytes_per_session",
            "restore_vs_history",
            "decision_cache",
            "budget_bytes",
            "fleet",
            "warm_speedup",
            "cold_first_question",
            "warm_first_question",
            "hibernate",
            "hibernated_bytes_per_session",
            "resident_bytes_per_session",
            "wake",
            "durability",
            "wal_group",
            "wal_sync",
            "overhead_group_x",
            "sessions_per_sec",
            "transport",
            "request_latency",
            "open_connections_peak",
            "overload",
            "goodput_per_sec",
            "p99_ratio",
            "shed_latency",
        ] {
            assert!(json.contains(needle), "missing {needle} in report");
        }
    }
}
