//! The optimal-gap experiment: how far each heuristic's *worst case* is
//! from the minimax-optimal bound (§4.1 says the optimal strategy exists
//! but is exponential; this quantifies what the efficient strategies give
//! up on instances small enough to compute the bound).

use crate::json::{Json, ToJson};
use crate::report::TextTable;
use jqi_core::paper::{example_2_1, flight_hotel};
use jqi_core::strategy::{optimal_worst_case, strategy_worst_case, StrategyKind};
use jqi_core::universe::Universe;

/// Worst cases on one instance.
#[derive(Debug, Clone)]
pub struct OptGapRow {
    /// Instance name.
    pub instance: String,
    /// Number of T-equivalence classes.
    pub classes: usize,
    /// The minimax-optimal worst case.
    pub optimal: u32,
    /// `(strategy, worst case)` for each deterministic heuristic.
    pub strategies: Vec<(String, u32)>,
}

/// The experiment across the paper's running examples.
#[derive(Debug, Clone)]
pub struct OptGapReport {
    /// One row per instance.
    pub rows: Vec<OptGapRow>,
}

/// Deterministic strategies whose game tree we can afford to explore.
const HEURISTICS: [StrategyKind; 4] = [
    StrategyKind::Bu,
    StrategyKind::Td,
    StrategyKind::L1s,
    StrategyKind::Eg,
];

/// Runs the experiment on the paper's two running examples.
pub fn run() -> OptGapReport {
    let mut rows = Vec::new();
    for (name, instance) in [
        ("Example 2.1", example_2_1()),
        ("Flight × Hotel", flight_hotel()),
    ] {
        let universe = Universe::build(instance);
        let optimal = optimal_worst_case(&universe, 16).expect("running examples are small");
        let strategies: Vec<(String, u32)> = HEURISTICS
            .iter()
            .map(|&kind| {
                let mut strategy = kind.build(0);
                let wc = strategy_worst_case(&universe, strategy.as_mut())
                    .expect("deterministic strategy on a small universe");
                (kind.name().to_string(), wc)
            })
            .collect();
        rows.push(OptGapRow {
            instance: name.to_string(),
            classes: universe.num_classes(),
            optimal,
            strategies,
        });
    }
    OptGapReport { rows }
}

impl ToJson for OptGapRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("instance".into(), Json::str(&self.instance)),
            ("classes".into(), Json::Num(self.classes as f64)),
            ("optimal".into(), Json::Num(self.optimal as f64)),
            (
                "strategies".into(),
                Json::Arr(
                    self.strategies
                        .iter()
                        .map(|(name, wc)| {
                            Json::Obj(vec![
                                ("strategy".into(), Json::str(name)),
                                ("worst_case".into(), Json::Num(*wc as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl ToJson for OptGapReport {
    fn to_json(&self) -> Json {
        Json::Obj(vec![("rows".into(), Json::arr(&self.rows))])
    }
}

impl OptGapReport {
    /// Renders the gaps as text.
    pub fn table(&self) -> TextTable {
        let mut header = vec!["instance".to_string(), "classes".into(), "OPT".into()];
        if let Some(first) = self.rows.first() {
            header.extend(first.strategies.iter().map(|(n, _)| n.clone()));
        }
        let refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = TextTable::new(&refs);
        for r in &self.rows {
            let mut cells = vec![
                r.instance.clone(),
                r.classes.to_string(),
                r.optimal.to_string(),
            ];
            cells.extend(r.strategies.iter().map(|(_, wc)| wc.to_string()));
            t.row(cells);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_respect_the_lower_bound() {
        let report = run();
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            for (name, wc) in &row.strategies {
                assert!(
                    *wc >= row.optimal,
                    "{name} worst case {wc} below OPT {} on {}",
                    row.optimal,
                    row.instance
                );
            }
        }
        assert_eq!(report.table().len(), 2);
    }
}
