//! Minimal JSON emission for the `--json` report mode.
//!
//! The build container cannot fetch `serde`/`serde_json`, so the report
//! structs implement the tiny [`ToJson`] trait instead of deriving
//! `serde::Serialize`. Output is deliberately plain: objects keep insertion
//! order, floats print with `{}` (shortest round-trip), strings escape the
//! JSON control set.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (u64 counts are exact below 2^53, plenty for reports).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience number constructor.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// An array of anything convertible via [`ToJson`].
    pub fn arr<'a, T: ToJson + 'a>(items: impl IntoIterator<Item = &'a T>) -> Json {
        Json::Arr(items.into_iter().map(ToJson::to_json).collect())
    }

    /// Pretty-prints with two-space indentation (the `serde_json`
    /// `to_string_pretty` look).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Report structs that can render themselves as JSON.
pub trait ToJson {
    /// The JSON value of `self`.
    fn to_json(&self) -> Json;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_printing_matches_serde_json_shape() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("x\"y")),
            ("n".into(), Json::num(3u32)),
            ("mean".into(), Json::Num(1.5)),
            (
                "items".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Bool(true), Json::Null]),
            ),
            ("empty".into(), Json::Arr(vec![])),
        ]);
        let s = v.to_string_pretty();
        assert_eq!(
            s,
            "{\n  \"name\": \"x\\\"y\",\n  \"n\": 3,\n  \"mean\": 1.5,\n  \"items\": [\n    1,\n    true,\n    null\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::Num(7.0).to_string_pretty(), "7");
        assert_eq!(Json::Num(0.25).to_string_pretty(), "0.25");
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(Json::str("a\u{1}b").to_string_pretty(), "\"a\\u0001b\"");
    }
}
