//! Figure 7: synthetic-dataset experiments — interactions and inference
//! time for the six generator configurations, grouped by `|θG|`.
//!
//! The paper uses *all* non-nullable join predicates as goals and averages
//! over 100 generated instances. The harness keeps both knobs configurable
//! (`runs`, `max_goals_per_size`) so the full protocol is reproducible but
//! the default invocation stays fast.

use crate::json::{Json, ToJson};
use crate::measure::{average, fmt_seconds, run_timed, Averaged, Measurement};
use crate::report::TextTable;
use jqi_core::lattice::goals_by_size;
use jqi_core::strategy::StrategyKind;
use jqi_core::universe::Universe;
use jqi_datagen::SyntheticConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of one Figure 7 experiment.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Params {
    /// Number of generated instances averaged (the paper uses 100).
    pub runs: usize,
    /// Cap on goals per `|θG|` group per instance (goals beyond the cap are
    /// sampled deterministically from the group).
    pub max_goals_per_size: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for Fig7Params {
    fn default() -> Self {
        Fig7Params {
            runs: 5,
            max_goals_per_size: 8,
            seed: 0xC0FFEE,
        }
    }
}

/// Results for one goal size `|θG|` under one configuration.
#[derive(Debug, Clone)]
pub struct Fig7SizeRow {
    /// The goal predicate size this row aggregates.
    pub goal_size: usize,
    /// Per-strategy averages, in [`StrategyKind::PAPER`] order.
    pub strategies: Vec<Averaged>,
}

/// The full Figure 7 experiment for one configuration.
#[derive(Debug, Clone)]
pub struct Fig7Report {
    /// The generator configuration, in the paper's notation.
    pub config: String,
    /// Mean join ratio across the generated instances.
    pub join_ratio: f64,
    /// `|D|` of each generated instance.
    pub product_size: u64,
    /// One row per goal size (0..=4 typically).
    pub rows: Vec<Fig7SizeRow>,
}

/// Ceiling on enumerated non-nullable goals per instance; instances whose
/// lattice is larger are skipped for the affected run (kept deterministic).
const GOAL_ENUM_LIMIT: usize = 200_000;

/// Runs the Figure 7 experiment for one synthetic configuration.
pub fn run(config: SyntheticConfig, params: Fig7Params) -> Fig7Report {
    let mut per_size: Vec<Vec<Vec<Measurement>>> = Vec::new(); // [size][strategy][run·goal]
    let mut ratio_sum = 0.0;
    let mut ratio_count = 0usize;
    let mut rng = SmallRng::seed_from_u64(params.seed);

    for run_idx in 0..params.runs {
        let inst = config.generate(params.seed.wrapping_add(run_idx as u64));
        let universe = Universe::build(inst);
        ratio_sum += jqi_core::lattice::join_ratio(&universe);
        ratio_count += 1;
        let Ok(groups) = goals_by_size(&universe, GOAL_ENUM_LIMIT) else {
            continue;
        };
        for (size, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            // Deterministic sample of at most `max_goals_per_size` goals.
            let mut picked: Vec<usize> = (0..group.len()).collect();
            while picked.len() > params.max_goals_per_size {
                let i = rng.gen_range(0..picked.len());
                picked.swap_remove(i);
            }
            while per_size.len() <= size {
                per_size.push(vec![Vec::new(); StrategyKind::PAPER.len()]);
            }
            for &gi in &picked {
                let goal = &group[gi];
                for (si, &kind) in StrategyKind::PAPER.iter().enumerate() {
                    per_size[size][si].push(run_timed(&universe, kind, goal, params.seed));
                }
            }
        }
    }

    let rows: Vec<Fig7SizeRow> = per_size
        .into_iter()
        .enumerate()
        .filter(|(_, per_strategy)| per_strategy.iter().all(|v| !v.is_empty()))
        .map(|(size, per_strategy)| Fig7SizeRow {
            goal_size: size,
            strategies: per_strategy.iter().map(|ms| average(ms)).collect(),
        })
        .collect();

    Fig7Report {
        config: config.to_string(),
        join_ratio: if ratio_count > 0 {
            ratio_sum / ratio_count as f64
        } else {
            0.0
        },
        product_size: config.product_size(),
        rows,
    }
}

impl ToJson for Fig7SizeRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("goal_size".into(), Json::Num(self.goal_size as f64)),
            ("strategies".into(), Json::arr(&self.strategies)),
        ])
    }
}

impl ToJson for Fig7Report {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("config".into(), Json::str(&self.config)),
            ("join_ratio".into(), Json::Num(self.join_ratio)),
            ("product_size".into(), Json::Num(self.product_size as f64)),
            ("rows".into(), Json::arr(&self.rows)),
        ])
    }
}

impl Fig7Report {
    /// The number-of-interactions table (Figure 7a/b/e/f/i/j style).
    pub fn interactions_table(&self) -> TextTable {
        let mut header = vec!["|θG|"];
        let names: Vec<&str> = StrategyKind::PAPER.iter().map(|k| k.name()).collect();
        header.extend(names.iter());
        let mut t = TextTable::new(&header);
        for row in &self.rows {
            let mut cells = vec![row.goal_size.to_string()];
            cells.extend(
                row.strategies
                    .iter()
                    .map(|a| format!("{:.1}", a.mean_interactions)),
            );
            t.row(cells);
        }
        t
    }

    /// The inference-time table (Figure 7c/d/g/h/k/l style).
    pub fn time_table(&self) -> TextTable {
        let mut header = vec!["|θG|"];
        let names: Vec<&str> = StrategyKind::PAPER.iter().map(|k| k.name()).collect();
        header.extend(names.iter());
        let mut t = TextTable::new(&header);
        for row in &self.rows {
            let mut cells = vec![row.goal_size.to_string()];
            cells.extend(row.strategies.iter().map(|a| fmt_seconds(a.mean_seconds)));
            t.row(cells);
        }
        t
    }

    /// The best strategy for goal size `s`, by mean interactions.
    pub fn best_strategy(&self, goal_size: usize) -> Option<&Averaged> {
        self.rows
            .iter()
            .find(|r| r.goal_size == goal_size)?
            .strategies
            .iter()
            .min_by(|a, b| {
                a.mean_interactions
                    .partial_cmp(&b.mean_interactions)
                    .expect("interaction means are finite")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> Fig7Params {
        Fig7Params {
            runs: 2,
            max_goals_per_size: 3,
            seed: 7,
        }
    }

    #[test]
    fn tiny_config_produces_grouped_rows() {
        // A small configuration keeps the test fast while exercising the
        // whole pipeline.
        let cfg = SyntheticConfig::new(2, 2, 12, 6);
        let r = run(cfg, tiny_params());
        assert!(!r.rows.is_empty());
        // Size-0 goals (∅) are always present.
        assert_eq!(r.rows[0].goal_size, 0);
        for row in &r.rows {
            assert_eq!(row.strategies.len(), 5);
        }
        assert_eq!(r.interactions_table().len(), r.rows.len());
    }

    #[test]
    fn bu_is_best_for_the_empty_goal() {
        // §5.3: the goal ∅ is inferred with one interaction, making BU the
        // best strategy for it.
        let cfg = SyntheticConfig::new(2, 2, 12, 6);
        let r = run(cfg, tiny_params());
        let best = r.best_strategy(0).expect("size-0 row exists");
        assert_eq!(best.mean_interactions, 1.0);
    }

    #[test]
    fn join_ratio_is_positive() {
        let cfg = SyntheticConfig::new(2, 3, 10, 4);
        let r = run(cfg, tiny_params());
        assert!(r.join_ratio > 0.0);
        assert_eq!(r.product_size, 100);
    }
}
