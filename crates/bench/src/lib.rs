//! Experiment harness regenerating every table and figure of the paper.
//!
//! The modules map one-to-one onto the paper's §5 artifacts (see DESIGN.md's
//! per-experiment index):
//!
//! * [`measure`] — timing one inference run of one strategy.
//! * [`fig6`] — Figure 6a–6d: interactions and inference time for the five
//!   TPC-H joins at two scales.
//! * [`fig7`] — Figure 7a–7l: interactions and inference time for the six
//!   synthetic configurations, grouped by goal-predicate size.
//! * [`table1`] — Table 1: per-dataset summary (product size, join ratio,
//!   best strategy, its time).
//! * [`scaling`] — the perf-trajectory sweep: profile-deduplicated vs
//!   row-pair Universe construction and lookahead latency on products up
//!   to 10⁸ tuples (`BENCH_scaling.json`).
//! * [`throughput`] — the `jqi_server` service under concurrent load:
//!   per-answer latency across M threads × K live sessions, batch
//!   answering, and snapshot/restore round-trips (`BENCH_server.json`).
//! * [`semijoin_exp`] — §6 / Theorem 6.1: the CONS⋉ solver against DPLL on
//!   random 3SAT reductions.
//! * [`optgap`] — worst cases of the deterministic heuristics against the
//!   minimax-optimal bound on the paper's running examples.
//! * [`report`] — plain-text table rendering shared by the binary.
//!
//! The `paper_experiments` binary drives all of it:
//! `cargo run -p jqi-bench --bin paper_experiments --release -- all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig6;
pub mod fig7;
pub mod json;
pub mod measure;
pub mod optgap;
pub mod report;
pub mod scaling;
pub mod semijoin_exp;
pub mod table1;
pub mod throughput;
