//! Plain-text table rendering for the experiment reports.

/// A simple aligned text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with space-padded, `|`-separated columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str(" | ");
                }
                line.push_str(&format!("{:width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a product size the way Table 1 does (`9.1 × 10^7`).
pub fn fmt_scientific(n: u64) -> String {
    if n < 1000 {
        return n.to_string();
    }
    let exp = (n as f64).log10().floor() as u32;
    let mantissa = n as f64 / 10f64.powi(exp as i32);
    format!("{mantissa:.1}e{exp}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        assert!(lines[3].starts_with("longer | 22"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        TextTable::new(&["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn scientific_format() {
        assert_eq!(fmt_scientific(12), "12");
        assert_eq!(fmt_scientific(2_500_000), "2.5e6");
        assert_eq!(fmt_scientific(91_000_000), "9.1e7");
    }
}
