//! Criterion bench for Figure 6: inference time per (TPC-H join, strategy).
//!
//! Reproduces the timing columns (Figures 6c/6d). Run with
//! `cargo bench -p jqi-bench --bench fig6_tpch`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jqi_core::engine::{run_inference, PredicateOracle};
use jqi_core::strategy::StrategyKind;
use jqi_core::universe::Universe;
use jqi_datagen::tpch::{TpchJoin, TpchScale, TpchTables};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig6(c: &mut Criterion) {
    let tables = TpchTables::generate(TpchScale::Small, 0xBEEF);
    let mut group = c.benchmark_group("fig6_tpch_small");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for join in TpchJoin::ALL {
        let w = tables.workload(join);
        let universe = Universe::build(w.instance.clone());
        for kind in StrategyKind::PAPER {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), join.name()),
                &(&universe, &w.goal),
                |b, (u, goal)| {
                    b.iter(|| {
                        let mut strategy = kind.build(7);
                        let mut oracle = PredicateOracle::new((*goal).clone());
                        let run = run_inference(u, strategy.as_mut(), &mut oracle)
                            .expect("consistent oracle");
                        black_box(run.interactions)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_universe_build(c: &mut Criterion) {
    // The shared preprocessing all strategies amortize: partitioning the
    // Cartesian product into T-equivalence classes.
    let tables = TpchTables::generate(TpchScale::Large, 0xBEEF);
    let mut group = c.benchmark_group("universe_build_large");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for join in TpchJoin::ALL {
        let w = tables.workload(join);
        group.bench_with_input(
            BenchmarkId::from_parameter(join.name()),
            &w.instance,
            |b, inst| b.iter(|| black_box(Universe::build(inst.clone()).num_classes())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig6, bench_universe_build);
criterion_main!(benches);
