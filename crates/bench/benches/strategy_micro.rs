//! Micro-benchmarks and ablations for the design choices DESIGN.md calls
//! out:
//!
//! * **lookahead depth** — LkS for k = 1, 2, 3 on one instance;
//! * **count mode** — tuple-level (paper) vs class-level entropy counting;
//! * **certain-tuple tests** — the Lemma 3.3 / 3.4 hot paths;
//! * **optimal gap** — the minimax-optimal strategy on Example 2.1, the
//!   yardstick the heuristics are compared against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jqi_core::certain::{informative_classes, uninformative_count, CountMode};
use jqi_core::engine::{run_inference, AdversarialOracle, PredicateOracle};
use jqi_core::paper::example_2_1;
use jqi_core::strategy::{optimal_worst_case, Lookahead, Optimal};
use jqi_core::universe::Universe;
use jqi_core::{InferenceState, Label, Sample};
use jqi_datagen::SyntheticConfig;
use std::hint::black_box;
use std::time::Duration;

/// A deterministic label script over the informative classes of `universe`:
/// the goal-oracle answers for a mid-size goal predicate.
fn label_script(universe: &Universe) -> Vec<(usize, Label)> {
    let goals = jqi_core::lattice::goals_by_size(universe, 100_000).expect("small lattice");
    let goal = goals
        .get(2)
        .and_then(|g| g.first())
        .or_else(|| goals.iter().rev().find_map(|g| g.first()))
        .expect("some goal exists")
        .clone();
    let mut state = InferenceState::new(universe);
    let mut script = Vec::new();
    while let Some(c) = state.nth_informative(0) {
        let label = if goal.is_subset(universe.sig(c)) {
            Label::Positive
        } else {
            Label::Negative
        };
        script.push((c, label));
        state.apply(c, label).expect("fresh class");
    }
    script
}

/// The tentpole micro-benchmark: per-label session maintenance, incremental
/// `InferenceState::apply` against the from-scratch re-derivation the
/// strategies used to perform (certain.rs scans after every label).
fn bench_incremental_state(c: &mut Criterion) {
    let universe = Universe::build(SyntheticConfig::new(3, 3, 40, 12).generate(0xD1E));
    let script = label_script(&universe);
    let mut group = c.benchmark_group("state_step");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("incremental_apply", |b| {
        b.iter(|| {
            let mut state = InferenceState::new(&universe);
            for &(cl, label) in &script {
                if state.label(cl).is_none() {
                    state.apply(cl, label).expect("unlabeled");
                }
                black_box(state.informative_len());
            }
            black_box(state.uninformative_count(CountMode::Tuples))
        })
    });
    group.bench_function("from_scratch_rescan", |b| {
        b.iter(|| {
            let mut sample = Sample::new(&universe);
            for &(cl, label) in &script {
                if sample.label(cl).is_none() {
                    sample.add(&universe, cl, label).expect("unlabeled");
                }
                // What every strategy used to re-derive per step.
                black_box(informative_classes(&universe, &sample).len());
            }
            black_box(uninformative_count(&universe, &sample, CountMode::Tuples))
        })
    });
    group.finish();

    // One-step entropies of every informative class: the L1S inner loop.
    let mut group = c.benchmark_group("l1s_entropies");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    let state = InferenceState::new(&universe);
    let sample = Sample::new(&universe);
    group.bench_function("incremental_gains", |b| {
        b.iter(|| {
            // Fresh state each iteration, matching the from-scratch
            // baseline's working set.
            let fresh = state.clone();
            black_box(fresh.entropies(CountMode::Tuples).len())
        })
    });
    group.bench_function("from_scratch_clone_and_count", |b| {
        b.iter(|| {
            black_box(jqi_core::entropy::all_entropies(&universe, &sample, CountMode::Tuples).len())
        })
    });
    group.finish();
}

fn bench_lookahead_depth(c: &mut Criterion) {
    let universe = Universe::build(SyntheticConfig::new(2, 3, 20, 8).generate(0xD0E));
    let goals = jqi_core::lattice::goals_by_size(&universe, 100_000).expect("small lattice");
    let goal = goals
        .get(2)
        .and_then(|g| g.first())
        .or_else(|| goals.iter().rev().find_map(|g| g.first()))
        .expect("some goal exists")
        .clone();
    let mut group = c.benchmark_group("lks_depth");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for k in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let mut strategy = Lookahead::new(k);
                let mut oracle = PredicateOracle::new(goal.clone());
                let run = run_inference(&universe, &mut strategy, &mut oracle)
                    .expect("consistent oracle");
                black_box(run.interactions)
            })
        });
    }
    group.finish();
}

fn bench_count_modes(c: &mut Criterion) {
    let universe = Universe::build(SyntheticConfig::new(3, 3, 30, 10).generate(0xD0F));
    let mut sample = Sample::new(&universe);
    // Label a couple of classes to make the certain tests non-trivial.
    let inf = informative_classes(&universe, &sample);
    if inf.len() >= 2 {
        sample
            .add(&universe, inf[0], Label::Negative)
            .expect("unlabeled");
        sample
            .add(&universe, inf[1], Label::Positive)
            .expect("unlabeled");
    }
    let mut group = c.benchmark_group("uninformative_count_mode");
    for (label, mode) in [
        ("tuples", CountMode::Tuples),
        ("classes", CountMode::Classes),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| black_box(uninformative_count(&universe, &sample, mode)))
        });
    }
    group.finish();
}

fn bench_certain_tests(c: &mut Criterion) {
    let universe = Universe::build(SyntheticConfig::new(3, 3, 50, 30).generate(0xD10));
    let mut sample = Sample::new(&universe);
    let inf = informative_classes(&universe, &sample);
    for (i, &cl) in inf.iter().take(6).enumerate() {
        let label = if i % 3 == 0 {
            Label::Positive
        } else {
            Label::Negative
        };
        if sample.label(cl).is_none() {
            let mut trial = sample.clone();
            if trial.add(&universe, cl, label).is_ok() && trial.is_consistent(&universe) {
                sample = trial;
            }
        }
    }
    c.bench_function("informative_classes_scan", |b| {
        b.iter(|| black_box(informative_classes(&universe, &sample).len()))
    });
}

fn bench_optimal_gap(c: &mut Criterion) {
    let universe = Universe::build(example_2_1());
    let mut group = c.benchmark_group("optimal_gap_example_2_1");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    group.bench_function("optimal_worst_case", |b| {
        b.iter(|| black_box(optimal_worst_case(&universe, 14).expect("12 classes")))
    });
    group.bench_function("optimal_vs_adversary", |b| {
        b.iter(|| {
            let mut strategy = Optimal::new();
            let mut adversary = AdversarialOracle::new();
            let run = run_inference(&universe, &mut strategy, &mut adversary)
                .expect("adversary stays consistent");
            black_box(run.interactions)
        })
    });
    group.finish();
}

fn bench_expected_gain_ablation(c: &mut Criterion) {
    // EG (probabilistic ranking, §7-style extension) vs the paper's L1S:
    // comparable per-question cost plus the inclusion–exclusion term.
    let universe = Universe::build(SyntheticConfig::new(2, 3, 20, 8).generate(0xD11));
    let goals = jqi_core::lattice::goals_by_size(&universe, 100_000).expect("small lattice");
    let goal = goals
        .iter()
        .rev()
        .find_map(|g| g.first())
        .expect("some goal exists")
        .clone();
    let mut group = c.benchmark_group("eg_vs_l1s");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for kind in [
        jqi_core::strategy::StrategyKind::Eg,
        jqi_core::strategy::StrategyKind::L1s,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut strategy = kind.build(0);
                    let mut oracle = PredicateOracle::new(goal.clone());
                    let run = run_inference(&universe, strategy.as_mut(), &mut oracle)
                        .expect("consistent oracle");
                    black_box(run.interactions)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_incremental_state,
    bench_lookahead_depth,
    bench_count_modes,
    bench_certain_tests,
    bench_optimal_gap,
    bench_expected_gain_ablation
);
criterion_main!(benches);
