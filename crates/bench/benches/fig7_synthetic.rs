//! Criterion bench for Figure 7: inference time per (synthetic config,
//! strategy, goal size).
//!
//! Reproduces the timing panels (Figures 7c/d/g/h/k/l) on two of the six
//! configurations — the remaining four behave identically up to scale and
//! are covered by the `paper_experiments` harness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jqi_core::engine::{run_inference, PredicateOracle};
use jqi_core::lattice::goals_by_size;
use jqi_core::strategy::StrategyKind;
use jqi_core::universe::Universe;
use jqi_datagen::SyntheticConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_config(c: &mut Criterion, cfg: SyntheticConfig, label: &str) {
    let universe = Universe::build(cfg.generate(0xFEED));
    let groups = goals_by_size(&universe, 200_000).expect("lattice fits");
    let mut group = c.benchmark_group(label);
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (size, goals) in groups.iter().enumerate() {
        let Some(goal) = goals.first() else { continue };
        for kind in StrategyKind::PAPER {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("size{size}")),
                &(&universe, goal),
                |b, (u, goal)| {
                    b.iter(|| {
                        let mut strategy = kind.build(11);
                        let mut oracle = PredicateOracle::new((*goal).clone());
                        let run = run_inference(u, strategy.as_mut(), &mut oracle)
                            .expect("consistent oracle");
                        black_box(run.interactions)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    // The paper's (3,3,50,100) — the mid-size RDF-store-like config — and
    // the smallest (2,4,50,100).
    bench_config(c, SyntheticConfig::new(3, 3, 50, 100), "fig7_3_3_50_100");
    bench_config(c, SyntheticConfig::new(2, 4, 50, 100), "fig7_2_4_50_100");
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
