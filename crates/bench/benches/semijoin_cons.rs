//! Criterion bench for §6: the exact CONS⋉ solver on 3SAT reductions,
//! with DPLL as the reference, sweeping the number of variables.
//!
//! The super-polynomial growth (Theorem 6.1) is directly visible in the
//! reported times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jqi_semijoin::consistency::find_consistent_semijoin;
use jqi_semijoin::reduction::reduce;
use jqi_semijoin::sat::{dpll, random_3sat};
use std::hint::black_box;
use std::time::Duration;

fn bench_cons_vs_dpll(c: &mut Criterion) {
    let mut group = c.benchmark_group("semijoin_cons_3sat");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for num_vars in [4usize, 6, 8] {
        let num_clauses = (num_vars as f64 * 4.27).round() as usize;
        let cnf = random_3sat(num_vars, num_clauses, 0x5A7);
        let red = reduce(&cnf);
        group.bench_with_input(BenchmarkId::new("cons_solver", num_vars), &red, |b, red| {
            b.iter(|| black_box(find_consistent_semijoin(&red.instance, &red.sample).is_some()))
        });
        group.bench_with_input(BenchmarkId::new("dpll", num_vars), &cnf, |b, cnf| {
            b.iter(|| black_box(dpll(cnf).is_some()))
        });
    }
    group.finish();
}

fn bench_reduction_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("semijoin_reduction_build");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for num_vars in [6usize, 12] {
        let cnf = random_3sat(num_vars, num_vars * 4, 0x5A8);
        group.bench_with_input(BenchmarkId::from_parameter(num_vars), &cnf, |b, cnf| {
            b.iter(|| black_box(reduce(cnf).instance.product_size()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cons_vs_dpll, bench_reduction_construction);
criterion_main!(benches);
