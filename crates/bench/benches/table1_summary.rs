//! Criterion bench for Table 1's instance-complexity machinery: universe
//! construction and join-ratio computation per dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jqi_core::lattice::{join_ratio, LatticeStats};
use jqi_core::universe::Universe;
use jqi_datagen::tpch::{TpchScale, TpchTables};
use jqi_datagen::PAPER_CONFIGS;
use std::hint::black_box;
use std::time::Duration;

fn bench_join_ratio_synthetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_join_ratio_synthetic");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for cfg in PAPER_CONFIGS {
        let universe = Universe::build(cfg.generate(0xABCD));
        group.bench_with_input(
            BenchmarkId::from_parameter(cfg.to_string()),
            &universe,
            |b, u| b.iter(|| black_box(join_ratio(u))),
        );
    }
    group.finish();
}

fn bench_lattice_stats_tpch(c: &mut Criterion) {
    let tables = TpchTables::generate(TpchScale::Small, 0xABCD);
    let mut group = c.benchmark_group("table1_lattice_stats_tpch");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for w in tables.workloads() {
        let universe = Universe::build(w.instance.clone());
        group.bench_with_input(
            BenchmarkId::from_parameter(w.join.name()),
            &universe,
            |b, u| b.iter(|| black_box(LatticeStats::of(u).join_ratio)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_join_ratio_synthetic,
    bench_lattice_stats_tpch
);
criterion_main!(benches);
