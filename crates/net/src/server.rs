//! The listener, the epoll event loop, and the bounded worker pool.
//!
//! ```text
//!  accept thread ──registers──▶ epoll (one-shot readable)
//!                                  │ readiness tokens
//!                                  ▼
//!                          event-loop thread ──▶ ready queue ──▶ N workers
//!                                                                  │
//!                    parked connection table ◀──re-arm/keep-alive──┘
//! ```
//!
//! A connection is **parked** (owned by the table, armed one-shot in
//! epoll) whenever no request is in flight, so ten thousand idle
//! keep-alive connections cost a file descriptor and a table entry each —
//! no thread. When epoll reports bytes, the event loop pushes the token
//! onto the ready queue and exactly one worker takes the connection out
//! of the table, reads one full request (with the socket's read timeout
//! as the slow-client bound), calls the [`Handler`], writes the response,
//! and either re-parks + re-arms the connection or closes it. Pipelined
//! requests already in the connection's buffer are served before parking
//! — re-arming would never fire for bytes this process has already read.
//!
//! Protocol errors are answered with the status mapped by
//! [`HttpError::status`] (or a silent close for idle timeouts) and the
//! connection is dropped; a handler panic is caught per-request and
//! answered with `500`, so one bad request can never take the worker —
//! let alone the process — down.
//!
//! On non-Linux hosts (the epoll module is Linux-only) a portable
//! fallback serves each connection on a worker thread for its whole
//! lifetime; the API is identical, concurrency is bounded by the pool.

use crate::wire::{
    read_request_body, read_request_head, write_response, HttpError, Limits, Request, RequestHead,
    Response, DEFAULT_READ_TIMEOUT,
};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A live snapshot of transport pressure, handed to [`Handler::admit`]
/// so the application can decide to shed before any work is done.
#[derive(Debug, Clone, Copy)]
pub struct Pressure {
    /// Wake-ups dispatched to the worker pool and not yet fully served —
    /// the aggregate per-worker queue depth, *including* the request
    /// being admitted.
    pub queue_depth: usize,
    /// Connections currently open (parked or in flight).
    pub open_connections: usize,
    /// Worker threads in the pool.
    pub workers: usize,
}

/// The admission decision a [`Handler`] makes before a request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Run the handler.
    Accept,
    /// Don't: answer a fast `503 overloaded` with a `Retry-After`
    /// header. Costs microseconds, sheds the work — including the body
    /// transfer: the decision is made on the framed head, and a body
    /// still in flight is never waited out (the connection closes with
    /// the refusal instead).
    Shed {
        /// Seconds the client should wait before retrying.
        retry_after_s: u32,
    },
}

/// The application half of the server: turns one request into one
/// response. Implementations must be shareable across the worker pool.
pub trait Handler: Send + Sync + 'static {
    /// Handles one parsed request.
    fn handle(&self, request: &Request) -> Response;

    /// A fast admission check run on the framed request head — *before*
    /// the body is read, before [`Handler::handle`] — with live
    /// transport pressure. The default accepts everything; an overloaded
    /// service returns [`Admission::Shed`] for work it would rather
    /// reject in microseconds than serve in seconds.
    fn admit(&self, _head: &RequestHead, _pressure: Pressure) -> Admission {
        Admission::Accept
    }
}

impl<F> Handler for F
where
    F: Fn(&Request) -> Response + Send + Sync + 'static,
{
    fn handle(&self, request: &Request) -> Response {
        self(request)
    }
}

/// Transport configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Worker threads reading requests and running the handler.
    pub workers: usize,
    /// Open-connection ceiling; connections past it are answered `503`
    /// and closed at accept time.
    pub max_connections: usize,
    /// Per-read socket timeout — the bound on a slow or stalled client
    /// holding a worker mid-request (and, in the portable fallback, the
    /// keep-alive idle bound).
    pub read_timeout: Duration,
    /// Wire-level size ceilings ([`Limits`]).
    pub limits: Limits,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 8,
            max_connections: 4096,
            read_timeout: DEFAULT_READ_TIMEOUT,
            limits: Limits::default(),
        }
    }
}

/// Live transport counters, all monotonic except `open_connections`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections refused with `503` at the `max_connections` ceiling.
    pub rejected: u64,
    /// Connections currently open (parked or in flight).
    pub open_connections: usize,
    /// Requests fully parsed and handled (shed requests not included).
    pub requests: u64,
    /// Requests answered with a wire-level error status (`400`, `408`,
    /// `413`, `431`, `501`) or dropped mid-message. Idle timeouts and
    /// peer resets have their own counters and are not in here.
    pub protocol_errors: u64,
    /// Handler panics caught and answered with `500`.
    pub handler_panics: u64,
    /// Parked keep-alive connections closed for idling past the read
    /// timeout — routine housekeeping, not an error.
    pub idle_timeouts: u64,
    /// Connections the peer reset (RST / abort / broken pipe) mid-use.
    pub peer_resets: u64,
    /// Requests rejected by [`Handler::admit`] with a fast `503`.
    pub shed: u64,
    /// Requests whose deadline lapsed before the handler ran — on
    /// arrival at a worker, or while the body was still being read.
    /// Answered `504`; never counted as a protocol error.
    pub deadlines_exceeded: u64,
    /// Wake-ups dispatched to the worker pool and not yet fully served
    /// (the live aggregate per-worker queue depth).
    pub queue_depth: usize,
}

/// Shared across the accept thread, event loop, and workers.
struct Shared {
    handler: Arc<dyn Handler>,
    config: NetConfig,
    shutdown: AtomicBool,
    /// Parked connections, keyed by token.
    parked: Mutex<HashMap<u64, Conn>>,
    #[cfg(target_os = "linux")]
    epoll: crate::sys::Epoll,
    accepted: AtomicU64,
    rejected: AtomicU64,
    open: AtomicUsize,
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    handler_panics: AtomicU64,
    idle_timeouts: AtomicU64,
    peer_resets: AtomicU64,
    shed: AtomicU64,
    deadlines_exceeded: AtomicU64,
    depth: AtomicUsize,
}

/// One connection between requests: the socket plus any buffered bytes a
/// previous read pulled in past the last message boundary.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// What to do with the connection after serving from it.
enum Served {
    /// Keep the connection; more buffered bytes may follow.
    KeepAlive,
    /// Close it (response asked, protocol error, or socket error).
    Close,
}

/// Holds one unit of worker queue depth for a scope. The portable
/// fallback uses it to count only in-flight requests (head framed →
/// response written) — never a parked keep-alive connection idling on
/// its worker — so idle connections cannot masquerade as queue pressure.
struct DepthGuard<'a>(&'a AtomicUsize);

impl<'a> DepthGuard<'a> {
    fn hold(depth: &'a AtomicUsize) -> DepthGuard<'a> {
        depth.fetch_add(1, Ordering::Relaxed);
        DepthGuard(depth)
    }
}

impl Drop for DepthGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Shared {
    /// Accounts one failed read to the right counter and answers it
    /// (when the error taxonomy says an answer is owed). Always closes.
    fn fail_read(&self, conn: &mut Conn, error: HttpError) -> Served {
        match &error {
            HttpError::Closed => {}
            HttpError::IdleTimeout => {
                self.idle_timeouts.fetch_add(1, Ordering::Relaxed);
            }
            HttpError::Reset => {
                self.peer_resets.fetch_add(1, Ordering::Relaxed);
            }
            HttpError::DeadlineLapsed => {
                // The client spent its own budget on the upload: a
                // lapsed deadline, not a protocol error — operators and
                // CI treat `protocol_errors` as a must-be-zero signal.
                self.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.protocol_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(status) = error.status() {
            let body = format!(
                "{{\"error\": {{\"code\": \"{}\", \"message\": \"{}\"}}}}",
                error.code(),
                error.to_string().replace('"', "'")
            );
            let _ = write_response(&mut conn.stream, &Response::json(status, body).closing());
        }
        Served::Close
    }

    /// Reads + handles exactly one request on `conn`. The caller owns the
    /// connection for the duration. `track_depth` is set by the portable
    /// fallback, where no event loop counts dispatched wake-ups: the
    /// depth is then held here, per in-flight request.
    fn serve_one(&self, conn: &mut Conn, track_depth: bool) -> Served {
        let head = match read_request_head(&mut conn.stream, &mut conn.buf, &self.config.limits) {
            Ok(head) => head,
            Err(error) => return self.fail_read(conn, error),
        };
        let _depth = track_depth.then(|| DepthGuard::hold(&self.depth));
        // Admission: the handler may shed in microseconds what it cannot
        // afford to serve in seconds. Decided on the head alone, so a
        // shed POST never occupies this worker for its body transfer.
        let pressure = Pressure {
            queue_depth: self.depth.load(Ordering::Relaxed),
            open_connections: self.open.load(Ordering::Relaxed),
            workers: self.config.workers.max(1),
        };
        if let Admission::Shed { retry_after_s } = self.handler.admit(&head, pressure) {
            self.shed.fetch_add(1, Ordering::Relaxed);
            // If the peer already delivered the whole body, drop it and
            // keep the connection; otherwise answer-and-close so the
            // unread bytes die with the socket instead of holding the
            // worker at the peer's pace.
            let body_buffered = conn.buf.len() >= head.content_length;
            if body_buffered {
                conn.buf.drain(..head.content_length);
            }
            let mut response = Response::json(
                503,
                "{\"error\": {\"code\": \"overloaded\", \
                 \"message\": \"server is shedding load; retry later\"}}"
                    .into(),
            );
            response
                .headers
                .push(("retry-after".into(), retry_after_s.to_string()));
            response.close = head.close || !body_buffered;
            if write_response(&mut conn.stream, &response).is_err() || response.close {
                return Served::Close;
            }
            return Served::KeepAlive;
        }
        let request =
            match read_request_body(&mut conn.stream, &mut conn.buf, head, &self.config.limits) {
                Ok(request) => request,
                Err(error) => return self.fail_read(conn, error),
            };
        // A request whose client already gave up is not worth running —
        // and must never reach a durable append it would orphan.
        if request.expired() {
            self.deadlines_exceeded.fetch_add(1, Ordering::Relaxed);
            let mut response = Response::json(
                504,
                "{\"error\": {\"code\": \"deadline_exceeded\", \
                 \"message\": \"request deadline lapsed before the work ran\"}}"
                    .into(),
            );
            response.close = request.close;
            if write_response(&mut conn.stream, &response).is_err() || response.close {
                return Served::Close;
            }
            return Served::KeepAlive;
        }
        self.requests.fetch_add(1, Ordering::Relaxed);
        // A panicking handler answers 500 and costs the request, not the
        // worker: the session table and registry are lock-poisoning-free
        // (parking_lot), so the service stays coherent.
        let handler = Arc::clone(&self.handler);
        let mut response =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler.handle(&request)))
                .unwrap_or_else(|_| {
                    self.handler_panics.fetch_add(1, Ordering::Relaxed);
                    Response::json(
                        500,
                        "{\"error\": {\"code\": \"internal\", \"message\": \"handler panicked\"}}"
                            .into(),
                    )
                    .closing()
                });
        if request.close {
            response.close = true;
        }
        if write_response(&mut conn.stream, &response).is_err() || response.close {
            return Served::Close;
        }
        Served::KeepAlive
    }

    fn close_conn(&self) {
        self.open.fetch_sub(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> NetStats {
        NetStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            open_connections: self.open.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            handler_panics: self.handler_panics.load(Ordering::Relaxed),
            idle_timeouts: self.idle_timeouts.load(Ordering::Relaxed),
            peer_resets: self.peer_resets.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadlines_exceeded: self.deadlines_exceeded.load(Ordering::Relaxed),
            queue_depth: self.depth.load(Ordering::Relaxed),
        }
    }
}

/// A cloneable handle onto a running server's live [`NetStats`], for
/// consumers that are not the owner of the [`Server`] — e.g. the gateway
/// surfacing transport counters on `GET /v1/stats`.
#[derive(Clone)]
pub struct StatsHandle {
    shared: Arc<Shared>,
}

impl StatsHandle {
    /// A snapshot of the transport counters.
    pub fn snapshot(&self) -> NetStats {
        self.shared.snapshot()
    }
}

impl std::fmt::Debug for StatsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatsHandle")
            .field("stats", &self.shared.snapshot())
            .finish()
    }
}

/// A running HTTP server. Dropping it shuts it down gracefully.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (`"127.0.0.1:0"` picks a free loopback port) and
    /// starts the accept thread, the event loop, and `config.workers`
    /// workers. The server runs until [`Server::shutdown`] (or drop).
    pub fn bind(
        addr: impl ToSocketAddrs,
        handler: Arc<dyn Handler>,
        config: NetConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            handler,
            config,
            shutdown: AtomicBool::new(false),
            parked: Mutex::new(HashMap::new()),
            #[cfg(target_os = "linux")]
            epoll: crate::sys::Epoll::new()?,
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            open: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            handler_panics: AtomicU64::new(0),
            idle_timeouts: AtomicU64::new(0),
            peer_resets: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadlines_exceeded: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
        });
        let threads = Self::spawn_threads(&shared, listener, workers)?;
        Ok(Server {
            local_addr,
            shared,
            threads,
        })
    }

    /// The bound address (with the OS-assigned port when `:0` was asked).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the transport counters.
    pub fn stats(&self) -> NetStats {
        self.shared.snapshot()
    }

    /// A cloneable [`StatsHandle`] for consumers (like the gateway's
    /// `GET /v1/stats`) that need the live counters without owning the
    /// server.
    pub fn stats_handle(&self) -> StatsHandle {
        StatsHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Stops accepting, drains the threads, and closes every parked
    /// connection. In-flight requests finish; parked keep-alive
    /// connections are dropped without ceremony.
    pub fn shutdown(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept thread with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
        self.shared.parked.lock().expect("not poisoned").clear();
    }

    #[cfg(target_os = "linux")]
    fn spawn_threads(
        shared: &Arc<Shared>,
        listener: TcpListener,
        workers: usize,
    ) -> std::io::Result<Vec<std::thread::JoinHandle<()>>> {
        use std::os::fd::AsRawFd;

        let (ready_tx, ready_rx) = mpsc::channel::<u64>();
        let ready_rx = Arc::new(Mutex::new(ready_rx));
        let mut threads = Vec::with_capacity(workers + 2);

        // Accept thread: park + arm each connection.
        {
            let shared = Arc::clone(shared);
            let next_token = AtomicU64::new(0);
            threads.push(
                std::thread::Builder::new()
                    .name("jqi-net-accept".into())
                    .spawn(move || {
                        for incoming in listener.incoming() {
                            if shared.shutdown.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(stream) = incoming else { continue };
                            shared.accepted.fetch_add(1, Ordering::Relaxed);
                            if shared.open.load(Ordering::Relaxed) >= shared.config.max_connections
                            {
                                shared.rejected.fetch_add(1, Ordering::Relaxed);
                                let mut stream = stream;
                                let mut refusal = Response::json(
                                    503,
                                    "{\"error\": {\"code\": \"overloaded\", \
                                     \"message\": \"connection limit reached\"}}"
                                        .into(),
                                )
                                .closing();
                                refusal.headers.push(("retry-after".into(), "1".into()));
                                let _ = write_response(&mut stream, &refusal);
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
                            let fd = stream.as_raw_fd();
                            let token = next_token.fetch_add(1, Ordering::Relaxed);
                            shared.open.fetch_add(1, Ordering::Relaxed);
                            shared.parked.lock().expect("not poisoned").insert(
                                token,
                                Conn {
                                    stream,
                                    buf: Vec::new(),
                                },
                            );
                            if shared.epoll.add(fd, token).is_err() {
                                shared.parked.lock().expect("not poisoned").remove(&token);
                                shared.close_conn();
                            }
                        }
                    })?,
            );
        }

        // Event loop: translate epoll readiness into ready-queue tokens.
        {
            let shared = Arc::clone(shared);
            threads.push(
                std::thread::Builder::new()
                    .name("jqi-net-events".into())
                    .spawn(move || {
                        let mut events = Vec::with_capacity(256);
                        loop {
                            if shared.shutdown.load(Ordering::SeqCst) {
                                break;
                            }
                            match shared.epoll.wait(&mut events, 100) {
                                Ok(0) => continue,
                                Ok(n) => {
                                    for event in events.iter().take(n) {
                                        // Copy out of the (possibly packed)
                                        // event before use.
                                        let token = { event.data };
                                        shared.depth.fetch_add(1, Ordering::Relaxed);
                                        if ready_tx.send(token).is_err() {
                                            shared.depth.fetch_sub(1, Ordering::Relaxed);
                                            return;
                                        }
                                    }
                                }
                                Err(_) => break,
                            }
                        }
                        // ready_tx drops here; workers drain and exit.
                    })?,
            );
        }

        // Workers: one request per wake-up, then re-park + re-arm.
        for w in 0..workers {
            let shared = Arc::clone(shared);
            let ready_rx = Arc::clone(&ready_rx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("jqi-net-worker-{w}"))
                    .spawn(move || loop {
                        let token = {
                            let rx = ready_rx.lock().expect("not poisoned");
                            match rx.recv() {
                                Ok(token) => token,
                                Err(_) => return,
                            }
                        };
                        // A token may outlive its connection (closed by a
                        // racing error path); missing entries are stale.
                        let conn = shared.parked.lock().expect("not poisoned").remove(&token);
                        let Some(mut conn) = conn else {
                            shared.depth.fetch_sub(1, Ordering::Relaxed);
                            continue;
                        };
                        loop {
                            match shared.serve_one(&mut conn, false) {
                                Served::Close => {
                                    shared.close_conn();
                                    break;
                                }
                                Served::KeepAlive if !conn.buf.is_empty() => {
                                    // Pipelined: the next request is already
                                    // in userspace, epoll would never fire.
                                    continue;
                                }
                                Served::KeepAlive => {
                                    use std::os::fd::AsRawFd;
                                    let fd = conn.stream.as_raw_fd();
                                    shared
                                        .parked
                                        .lock()
                                        .expect("not poisoned")
                                        .insert(token, conn);
                                    if shared.epoll.rearm(fd, token).is_err() {
                                        shared.parked.lock().expect("not poisoned").remove(&token);
                                        shared.close_conn();
                                    }
                                    break;
                                }
                            }
                        }
                        shared.depth.fetch_sub(1, Ordering::Relaxed);
                    })?,
            );
        }
        Ok(threads)
    }

    /// Portable fallback: each accepted connection is owned by one worker
    /// for its whole keep-alive lifetime (concurrency = pool size).
    #[cfg(not(target_os = "linux"))]
    fn spawn_threads(
        shared: &Arc<Shared>,
        listener: TcpListener,
        workers: usize,
    ) -> std::io::Result<Vec<std::thread::JoinHandle<()>>> {
        let (conn_tx, conn_rx) = mpsc::channel::<Conn>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = Arc::clone(shared);
            threads.push(
                std::thread::Builder::new()
                    .name("jqi-net-accept".into())
                    .spawn(move || {
                        for incoming in listener.incoming() {
                            if shared.shutdown.load(Ordering::SeqCst) {
                                break;
                            }
                            let Ok(stream) = incoming else { continue };
                            shared.accepted.fetch_add(1, Ordering::Relaxed);
                            if shared.open.load(Ordering::Relaxed) >= shared.config.max_connections
                            {
                                shared.rejected.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                            let _ = stream.set_nodelay(true);
                            let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
                            shared.open.fetch_add(1, Ordering::Relaxed);
                            if conn_tx
                                .send(Conn {
                                    stream,
                                    buf: Vec::new(),
                                })
                                .is_err()
                            {
                                break;
                            }
                        }
                    })?,
            );
        }
        for w in 0..workers {
            let shared = Arc::clone(shared);
            let conn_rx = Arc::clone(&conn_rx);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("jqi-net-worker-{w}"))
                    .spawn(move || loop {
                        let conn = {
                            let rx = conn_rx.lock().expect("not poisoned");
                            match rx.recv() {
                                Ok(conn) => conn,
                                Err(_) => return,
                            }
                        };
                        let mut conn = conn;
                        // serve_one holds the queue depth per in-flight
                        // request (track_depth), so a connection idling
                        // between keep-alive requests — which occupies
                        // this worker, but queues no work — never counts
                        // as pressure.
                        loop {
                            if shared.shutdown.load(Ordering::SeqCst) {
                                break;
                            }
                            if matches!(shared.serve_one(&mut conn, true), Served::Close) {
                                break;
                            }
                        }
                        shared.close_conn();
                    })?,
            );
        }
        Ok(threads)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("stats", &self.stats())
            .finish()
    }
}

// Unused-field lint helper: the portable fallback never touches `parked`.
#[cfg(not(target_os = "linux"))]
impl Shared {
    #[allow(dead_code)]
    fn touch_parked(&self) -> usize {
        self.parked.lock().expect("not poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    fn echo_server() -> Server {
        let handler: Arc<dyn Handler> = Arc::new(|request: &Request| {
            if request.path == "/panic" {
                panic!("boom");
            }
            Response::json(
                200,
                format!(
                    "{{\"method\": \"{}\", \"path\": \"{}\", \"body_len\": {}}}",
                    request.method,
                    request.path,
                    request.body.len()
                ),
            )
        });
        Server::bind("127.0.0.1:0", handler, NetConfig::default()).expect("loopback bind")
    }

    #[test]
    fn serves_keep_alive_requests_over_one_connection() {
        let mut server = echo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        for i in 0..10 {
            let response = client.get(&format!("/ping/{i}")).unwrap();
            assert_eq!(response.status, 200);
            assert!(response.body_str().unwrap().contains(&format!("/ping/{i}")));
        }
        let stats = server.stats();
        assert_eq!(stats.accepted, 1, "keep-alive reused the connection");
        assert_eq!(stats.requests, 10);
        server.shutdown();
    }

    #[test]
    fn serves_many_concurrent_connections_with_a_small_pool() {
        let mut server = echo_server();
        let addr = server.local_addr();
        // 64 connections, 4× the worker pool: parked connections must not
        // hold workers.
        let mut clients: Vec<Client> = (0..64).map(|_| Client::connect(addr).unwrap()).collect();
        for round in 0..3 {
            for (i, client) in clients.iter_mut().enumerate() {
                let response = client.get(&format!("/c{i}/r{round}")).unwrap();
                assert_eq!(response.status, 200);
            }
        }
        let stats = server.stats();
        assert_eq!(stats.accepted, 64);
        assert_eq!(stats.requests, 64 * 3);
        assert_eq!(stats.open_connections, 64);
        server.shutdown();
    }

    #[test]
    fn a_handler_panic_costs_the_request_not_the_server() {
        let mut server = echo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let response = client.get("/panic").unwrap();
        assert_eq!(response.status, 500);
        assert!(response.body_str().unwrap().contains("internal"));
        // The server still answers fresh connections.
        let mut client2 = Client::connect(server.local_addr()).unwrap();
        assert_eq!(client2.get("/ok").unwrap().status, 200);
        assert_eq!(server.stats().handler_panics, 1);
        server.shutdown();
    }

    #[test]
    fn malformed_requests_get_4xx_and_a_close() {
        use std::io::{Read, Write};
        let mut server = echo_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"BOGUS\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "got {response:?}");
        assert!(response.contains("malformed_request"));
        assert_eq!(server.stats().protocol_errors, 1);
        server.shutdown();
    }

    #[test]
    fn admit_shed_answers_fast_503_with_retry_after_and_keeps_the_connection() {
        struct Shedder;
        impl Handler for Shedder {
            fn handle(&self, _: &Request) -> Response {
                Response::json(200, "{\"ok\": true}".into())
            }
            fn admit(&self, head: &RequestHead, pressure: Pressure) -> Admission {
                assert!(pressure.queue_depth >= 1, "the admitted request counts");
                assert!(pressure.workers >= 1);
                if head.path.starts_with("/cheap") {
                    Admission::Shed { retry_after_s: 3 }
                } else {
                    Admission::Accept
                }
            }
        }
        let mut server =
            Server::bind("127.0.0.1:0", Arc::new(Shedder), NetConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let response = client.get("/cheap/q").unwrap();
        assert_eq!(response.status, 503);
        assert!(response.body_str().unwrap().contains("overloaded"));
        let retry_after = response
            .headers
            .iter()
            .find(|(n, _)| n == "retry-after")
            .map(|(_, v)| v.as_str());
        assert_eq!(retry_after, Some("3"));
        // Same connection still serves accepted work.
        assert_eq!(client.get("/fine").unwrap().status, 200);
        let stats = server.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.requests, 1, "shed requests are not counted as served");
        assert_eq!(stats.protocol_errors, 0);
        server.shutdown();
    }

    #[test]
    fn a_shed_post_does_not_wait_for_its_body() {
        struct ShedEverything;
        impl Handler for ShedEverything {
            fn handle(&self, _: &Request) -> Response {
                Response::json(200, "{}".into())
            }
            fn admit(&self, _: &RequestHead, _: Pressure) -> Admission {
                Admission::Shed { retry_after_s: 1 }
            }
        }
        let mut server = Server::bind(
            "127.0.0.1:0",
            Arc::new(ShedEverything),
            NetConfig::default(),
        )
        .unwrap();
        use std::io::{Read, Write};
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Promise a large body and send none of it: the 503 must come
        // back immediately (with a close, since the body is in flight),
        // not after the 30 s read budget drains the transfer.
        stream
            .write_all(b"POST /x HTTP/1.1\r\ncontent-length: 500000\r\n\r\n")
            .unwrap();
        let started = std::time::Instant::now();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 503"), "got {response:?}");
        assert!(response.contains("overloaded"));
        assert!(response.contains("connection: close"), "got {response:?}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "the shed waited on the body: {:?}",
            started.elapsed()
        );
        let stats = server.stats();
        assert_eq!(stats.shed, 1);
        assert_eq!(stats.requests, 0);
        server.shutdown();
    }

    #[test]
    fn a_deadline_lapsing_mid_body_counts_as_deadline_not_protocol_error() {
        let handler: Arc<dyn Handler> = Arc::new(|_req: &Request| Response::json(200, "{}".into()));
        let config = NetConfig {
            read_timeout: Duration::from_millis(200),
            ..NetConfig::default()
        };
        let mut server = Server::bind("127.0.0.1:0", handler, config).unwrap();
        use std::io::{Read, Write};
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // A 50 ms deadline against a 1000-byte promise that never
        // arrives: the deadline lapses first (long before the read
        // budget), and the answer is a 504, accounted as a lapsed
        // deadline.
        stream
            .write_all(b"POST /x HTTP/1.1\r\nx-deadline-ms: 50\r\ncontent-length: 1000\r\n\r\nxx")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 504"), "got {response:?}");
        assert!(response.contains("deadline_exceeded"));
        let stats = server.stats();
        assert_eq!(stats.deadlines_exceeded, 1, "{stats:?}");
        assert_eq!(stats.protocol_errors, 0, "{stats:?}");
        assert_eq!(stats.requests, 0);
        server.shutdown();
    }

    #[test]
    fn an_expired_deadline_gets_504_without_running_the_handler() {
        let ran = Arc::new(AtomicU64::new(0));
        let handler: Arc<dyn Handler> = {
            let ran = Arc::clone(&ran);
            Arc::new(move |_req: &Request| {
                ran.fetch_add(1, Ordering::Relaxed);
                Response::json(200, "{}".into())
            })
        };
        let mut server = Server::bind("127.0.0.1:0", handler, NetConfig::default()).unwrap();
        use std::io::{Read, Write};
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(b"GET /x HTTP/1.1\r\nx-deadline-ms: 0\r\nconnection: close\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 504"), "got {response:?}");
        assert!(response.contains("deadline_exceeded"));
        assert_eq!(ran.load(Ordering::Relaxed), 0, "handler must not run");
        let stats = server.stats();
        assert_eq!(stats.deadlines_exceeded, 1);
        assert_eq!(stats.requests, 0);
        server.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_joins_cleanly() {
        let mut server = echo_server();
        let addr = server.local_addr();
        let _parked = Client::connect(addr).unwrap();
        server.shutdown();
        server.shutdown();
        assert!(
            Client::connect(addr).is_err() || {
                // The OS may accept into the dead listener's backlog; a
                // request must at least fail.
                let mut c = Client::connect(addr).unwrap();
                c.get("/x").is_err()
            }
        );
    }
}
