//! `jqi_net` — a vendored HTTP/1.1 transport for the join-query
//! inference service.
//!
//! The build environment has no crates.io access, so this crate plays
//! the role hyper/axum would: a from-scratch, dependency-free HTTP
//! stack, scoped to exactly what a loopback/intranet JSON service
//! needs and nothing more. It has three layers:
//!
//! - [`wire`] — the codec: strict incremental request parsing
//!   (`Content-Length` framing only; chunked coding answered `501`),
//!   response writing, a typed [`wire::HttpError`] taxonomy mapping every
//!   client mistake to a status code, and hard
//!   [`wire::Limits`] enforced *while* bytes arrive.
//! - [`server`] — the runtime: an accept thread, a Linux `epoll`
//!   one-shot event loop (see [`sys`], the crate's only `unsafe`
//!   module), and a bounded worker pool. Idle keep-alive connections
//!   are parked in a table instead of holding threads, which is what
//!   lets a handful of workers serve ≥ 1024 concurrent sessions in the
//!   transport benchmark. A portable thread-per-connection fallback
//!   covers non-Linux hosts.
//! - [`client`] — a small blocking keep-alive client for tests,
//!   examples, and the bench driver, plus a [`client::RetryingClient`]
//!   with capped, seeded-jitter backoff that honors `Retry-After` and
//!   retries only idempotent requests.
//! - [`chaos`] — a scripted, deterministic TCP fault-injection proxy
//!   ([`chaos::ChaosProxy`]) for the integration tests and the
//!   `overload` bench phase: delay, truncation, resets, slow-loris
//!   drip, and duplicate delivery, per-connection by script index.
//!
//! The server also carries the overload-control seam: a
//! [`server::Handler`] may implement [`server::Handler::admit`] to shed
//! work with a fast `503` + `Retry-After` under pressure
//! ([`server::Pressure`]), and every request can carry a deadline
//! ([`wire::DEADLINE_HEADER`] or [`wire::Limits::default_deadline`])
//! past which the work is abandoned before it runs.
//!
//! The crate knows nothing about sessions or universes: it turns bytes
//! into [`wire::Request`]s and hands them to a [`server::Handler`]. The
//! JSON gateway living in `jqi_server::http` is one such handler.
//!
//! ```no_run
//! use jqi_net::{NetConfig, Request, Response, Server};
//! use std::sync::Arc;
//!
//! let handler = Arc::new(|_req: &Request| Response::json(200, "{\"ok\": true}".into()));
//! let server = Server::bind("127.0.0.1:0", handler, NetConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod chaos;
pub mod client;
pub mod server;
#[cfg(target_os = "linux")]
pub mod sys;
pub mod wire;

pub use chaos::{ChaosProxy, ChaosScript, ChaosStats, Fault};
pub use client::{Client, RetryPolicy, RetryStats, RetryingClient};
pub use server::{Admission, Handler, NetConfig, NetStats, Pressure, Server, StatsHandle};
pub use wire::{
    ClientResponse, HttpError, Limits, Request, RequestHead, Response, DEADLINE_HEADER,
};
