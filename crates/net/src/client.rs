//! A minimal blocking HTTP/1.1 client over one keep-alive connection,
//! plus a [`RetryingClient`] that survives an imperfect network.
//!
//! Exists for the loopback consumers of the stack — the integration
//! tests, `examples/http_client.rs`, and the `transport`/`overload`
//! bench phases — so none of them has to hand-roll sockets. One
//! [`Client`] is one connection; open several for concurrency.
//!
//! [`RetryingClient`] layers reconnects, capped exponential backoff with
//! seeded jitter, and `Retry-After` honoring on top. It retries a failed
//! send only when the request is *idempotent* — `GET`/`DELETE` by
//! method, or a `POST` explicitly marked so by the caller (answer
//! batches are class-addressed idempotent) — because a connection that
//! died mid-exchange leaves the fate of a non-idempotent request
//! unknown. A `503` with `Retry-After` is different: the server rejected
//! the work *before doing any of it*, so any request may be retried. The
//! server's hint replaces the computed backoff as the nominal wait, but
//! is floored at the policy base and jittered to 50–100 % like any other
//! sleep — a fleet of shed clients obeying the same hint verbatim would
//! return in lockstep and re-create the overload it hinted them away
//! from.

use crate::wire::{
    format_request, format_request_with, read_client_response, ClientResponse, HttpError, Limits,
    DEADLINE_HEADER,
};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One keep-alive connection to an HTTP server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    limits: Limits,
}

impl Client {
    /// Connects with a 10-second read timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with an explicit per-read timeout.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        read_timeout: Duration,
    ) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(Client {
            stream,
            buf: Vec::new(),
            limits: Limits {
                // Responses (stats dumps, snapshots) can be bigger than
                // what we let clients upload.
                max_body_bytes: 64 << 20,
                ..Limits::default()
            },
        })
    }

    /// Sends one request and reads the matching response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<ClientResponse, HttpError> {
        use std::io::Write;
        let bytes = format_request(method, path, body, false);
        self.stream
            .write_all(&bytes)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        read_client_response(&mut self.stream, &mut self.buf, &self.limits)
    }

    /// Sends one request with extra headers and reads the response.
    pub fn request_with(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        extra: &[(String, String)],
    ) -> Result<ClientResponse, HttpError> {
        use std::io::Write;
        let bytes = format_request_with(method, path, body, false, extra);
        self.stream
            .write_all(&bytes)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        read_client_response(&mut self.stream, &mut self.buf, &self.limits)
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> Result<ClientResponse, HttpError> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> Result<ClientResponse, HttpError> {
        self.request("POST", path, Some(body.as_bytes()))
    }

    /// `DELETE path`.
    pub fn delete(&mut self, path: &str) -> Result<ClientResponse, HttpError> {
        self.request("DELETE", path, None)
    }
}

/// Retry/backoff knobs for [`RetryingClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, the first included (so `1` never retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per attempt. Also the
    /// floor under server-hinted waits, so `Retry-After: 0` cannot turn
    /// the retry loop hot.
    pub base_backoff: Duration,
    /// Ceiling on any one computed or server-hinted wait.
    pub max_backoff: Duration,
    /// Seed for the jitter stream (same seed → same waits).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            seed: 0x6a71_6e65,
        }
    }
}

/// Counters a [`RetryingClient`] keeps about its own persistence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Requests re-sent after a connection-level failure.
    pub retried_errors: u64,
    /// Requests re-sent after a `503` + `Retry-After` shed.
    pub retried_sheds: u64,
    /// Reconnects performed (initial connects not included).
    pub reconnects: u64,
    /// Requests that exhausted every attempt.
    pub gave_up: u64,
}

/// A [`Client`] wrapper that reconnects, backs off, and retries.
///
/// See the module docs for the retry rules. The per-request deadline
/// (when set) rides on every request as the [`DEADLINE_HEADER`].
#[derive(Debug)]
pub struct RetryingClient {
    addr: SocketAddr,
    conn: Option<Client>,
    policy: RetryPolicy,
    read_timeout: Duration,
    deadline_ms: Option<u64>,
    rng: u64,
    connected_once: bool,
    stats: RetryStats,
}

impl RetryingClient {
    /// Creates a client for `addr`. The connection is opened lazily on
    /// the first request and re-opened whenever it breaks.
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> RetryingClient {
        RetryingClient {
            addr,
            conn: None,
            policy,
            read_timeout: Duration::from_secs(10),
            deadline_ms: None,
            rng: policy.seed | 1,
            connected_once: false,
            stats: RetryStats::default(),
        }
    }

    /// Sets the per-read socket timeout used for (re)connects.
    pub fn set_read_timeout(&mut self, read_timeout: Duration) {
        self.read_timeout = read_timeout;
    }

    /// Attaches (or clears) a deadline sent with every request as the
    /// [`DEADLINE_HEADER`], in milliseconds.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
    }

    /// The retry counters so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// `GET path` — idempotent, retried on failure.
    pub fn get(&mut self, path: &str) -> Result<ClientResponse, HttpError> {
        self.request("GET", path, None, true)
    }

    /// `DELETE path` — idempotent, retried on failure.
    pub fn delete(&mut self, path: &str) -> Result<ClientResponse, HttpError> {
        self.request("DELETE", path, None, true)
    }

    /// `POST path` — *not* retried on connection failure (its fate is
    /// unknown once the connection dies), still retried on a shed `503`.
    pub fn post(&mut self, path: &str, body: &str) -> Result<ClientResponse, HttpError> {
        self.request("POST", path, Some(body.as_bytes()), false)
    }

    /// `POST path` for an endpoint the caller asserts is idempotent
    /// (e.g. class-addressed answer batches): retried like a `GET`.
    pub fn post_idempotent(&mut self, path: &str, body: &str) -> Result<ClientResponse, HttpError> {
        self.request("POST", path, Some(body.as_bytes()), true)
    }

    /// One request with the retry loop around it.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
        idempotent: bool,
    ) -> Result<ClientResponse, HttpError> {
        let extra: Vec<(String, String)> = self
            .deadline_ms
            .map(|ms| vec![(DEADLINE_HEADER.to_string(), ms.to_string())])
            .unwrap_or_default();
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let last = attempt >= self.policy.max_attempts.max(1);
            let outcome = self
                .ensure_conn()
                .and_then(|conn| conn.request_with(method, path, body, &extra));
            match outcome {
                Ok(response) if response.status == 503 => {
                    let hinted = retry_after(&response);
                    if response.close {
                        self.conn = None;
                    }
                    // A shed happened before any work: safe to retry any
                    // method. The server's hint sets the nominal wait,
                    // floored at the policy base (a `Retry-After: 0` must
                    // not become a hot retry loop) and jittered like any
                    // other backoff — every shed client got the same hint
                    // at the same moment, so sleeping it verbatim would
                    // march them back in lockstep for a retry stampede.
                    if last || hinted.is_none() {
                        if last {
                            self.stats.gave_up += 1;
                        }
                        return Ok(response);
                    }
                    self.stats.retried_sheds += 1;
                    let nominal = hinted
                        .unwrap_or_default()
                        .max(self.policy.base_backoff)
                        .min(self.policy.max_backoff);
                    let wait = self.jittered(nominal);
                    std::thread::sleep(wait);
                }
                Ok(response) => {
                    if response.close {
                        self.conn = None;
                    }
                    return Ok(response);
                }
                Err(error) => {
                    // The connection's state is unknown; start fresh.
                    self.conn = None;
                    if last || !idempotent {
                        self.stats.gave_up += 1;
                        return Err(error);
                    }
                    self.stats.retried_errors += 1;
                    std::thread::sleep(self.backoff(attempt));
                }
            }
        }
    }

    fn ensure_conn(&mut self) -> Result<&mut Client, HttpError> {
        if self.conn.is_none() {
            let fresh = Client::connect_with_timeout(self.addr, self.read_timeout)
                .map_err(|e| HttpError::Io(e.to_string()))?;
            if self.connected_once {
                self.stats.reconnects += 1;
            }
            self.connected_once = true;
            self.conn = Some(fresh);
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    /// Capped exponential backoff with seeded jitter: the nominal wait
    /// is `base << (attempt-1)` capped at `max_backoff`, jittered to
    /// 50–100 % so synchronized clients fan out.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let nominal = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << (attempt - 1).min(16))
            .min(self.policy.max_backoff);
        self.jittered(nominal)
    }

    /// Jitters `nominal` to a seeded-random 50–100 % of itself. Applied
    /// to every sleep, including server-hinted `Retry-After` waits.
    fn jittered(&mut self, nominal: Duration) -> Duration {
        self.rng = splitmix(self.rng);
        let ns = nominal.as_nanos().min(u128::from(u64::MAX)) as u64;
        Duration::from_nanos(ns / 2 + self.rng % (ns / 2 + 1).max(1))
    }
}

/// The `Retry-After` header as a duration, when present and well-formed.
fn retry_after(response: &ClientResponse) -> Option<Duration> {
    response
        .headers
        .iter()
        .find(|(n, _)| n == "retry-after")
        .and_then(|(_, v)| v.parse::<u64>().ok())
        .map(Duration::from_secs)
}

/// One step of splitmix64 (same generator the chaos proxy jitters with).
fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(seed: u64) -> RetryingClient {
        let policy = RetryPolicy {
            seed,
            ..RetryPolicy::default()
        };
        RetryingClient::new("127.0.0.1:1".parse().unwrap(), policy)
    }

    #[test]
    fn jittered_waits_land_in_the_half_to_full_window() {
        let mut c = client(7);
        let nominal = Duration::from_millis(100);
        for _ in 0..64 {
            let wait = c.jittered(nominal);
            assert!(wait >= nominal / 2 && wait <= nominal, "wait {wait:?}");
        }
    }

    #[test]
    fn jitter_spreads_identically_hinted_clients_apart() {
        // Two clients with different seeds obeying the same hint must not
        // come back at the same instant — that is the retry stampede the
        // jitter exists to break.
        let (mut a, mut b) = (client(1), client(2));
        let nominal = Duration::from_secs(1);
        let spread = (0..16).any(|_| a.jittered(nominal) != b.jittered(nominal));
        assert!(spread);
    }
}
