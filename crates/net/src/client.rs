//! A minimal blocking HTTP/1.1 client over one keep-alive connection.
//!
//! Exists for the loopback consumers of the stack — the integration
//! tests, `examples/http_client.rs`, and the `transport` bench phase —
//! so none of them has to hand-roll sockets. One [`Client`] is one
//! connection; open several for concurrency.

use crate::wire::{format_request, read_client_response, ClientResponse, HttpError, Limits};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One keep-alive connection to an HTTP server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    limits: Limits,
}

impl Client {
    /// Connects with a 10-second read timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// Connects with an explicit per-read timeout.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        read_timeout: Duration,
    ) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        Ok(Client {
            stream,
            buf: Vec::new(),
            limits: Limits {
                // Responses (stats dumps, snapshots) can be bigger than
                // what we let clients upload.
                max_body_bytes: 64 << 20,
                ..Limits::default()
            },
        })
    }

    /// Sends one request and reads the matching response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> Result<ClientResponse, HttpError> {
        use std::io::Write;
        let bytes = format_request(method, path, body, false);
        self.stream
            .write_all(&bytes)
            .map_err(|e| HttpError::Io(e.to_string()))?;
        read_client_response(&mut self.stream, &mut self.buf, &self.limits)
    }

    /// `GET path`.
    pub fn get(&mut self, path: &str) -> Result<ClientResponse, HttpError> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body.
    pub fn post(&mut self, path: &str, body: &str) -> Result<ClientResponse, HttpError> {
        self.request("POST", path, Some(body.as_bytes()))
    }

    /// `DELETE path`.
    pub fn delete(&mut self, path: &str) -> Result<ClientResponse, HttpError> {
        self.request("DELETE", path, None)
    }
}
