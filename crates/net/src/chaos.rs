//! A scripted in-process TCP fault-injection proxy.
//!
//! The durability tier proved its crash safety against a *scripted*,
//! deterministic fault plan (`CrashScript` in `jqi_server`); this module
//! extends the same discipline to the wire. A [`ChaosProxy`] sits between
//! a client and the real server, forwarding bytes — except where the
//! [`ChaosScript`] says otherwise: connection *n* suffers `faults[n]`
//! ([`Fault::None`] past the end of the script), so a test or bench run
//! with the same script and seed sees the same faults on the same
//! connections every time.
//!
//! Faults model the hostile-peer patterns the transport must survive:
//! delayed delivery, truncation mid-message, a hard RST, a slow-loris
//! drip, and duplicate delivery (which, for class-addressed answer
//! batches, must be a no-op end to end). The proxy is test/bench
//! equipment, not production code — one thread per connection is fine.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One scripted misbehavior, applied to a whole proxied connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward bytes untouched.
    None,
    /// Sleep a seeded-jittered `ms` before forwarding the first bytes.
    Delay {
        /// Nominal delay in milliseconds (actual is `ms/2 ..= ms`, seeded).
        ms: u64,
    },
    /// Forward only the first `bytes` toward the server, then close both
    /// sides — the peer that hangs up mid-message.
    Truncate {
        /// Client→server bytes forwarded before the close.
        bytes: usize,
    },
    /// Forward `after_bytes` toward the server, then hard-reset (RST)
    /// the server side instead of closing it politely.
    Reset {
        /// Client→server bytes forwarded before the reset.
        after_bytes: usize,
    },
    /// Slow-loris: forward client→server traffic `chunk` bytes at a
    /// time with a seeded-jittered `ms` pause between chunks.
    Drip {
        /// Bytes per forwarded piece (≥ 1).
        chunk: usize,
        /// Nominal pause between pieces in milliseconds.
        ms: u64,
    },
    /// Deliver every client→server segment twice — duplicate delivery,
    /// which an idempotent endpoint must absorb.
    Duplicate,
}

/// The deterministic fault plan: connection `n` through the proxy gets
/// `faults[n]`, and connections past the end of the script pass through
/// clean. `seed` drives the jitter inside [`Fault::Delay`] and
/// [`Fault::Drip`], so two runs with the same script behave identically.
#[derive(Debug, Clone, Default)]
pub struct ChaosScript {
    /// Seed for the per-connection jitter streams.
    pub seed: u64,
    /// Fault for connection index 0, 1, 2, …; missing entries are clean.
    pub faults: Vec<Fault>,
}

impl ChaosScript {
    /// A script that injects nothing — the proxy as a transparent relay.
    pub fn pass_through() -> ChaosScript {
        ChaosScript::default()
    }

    fn fault_for(&self, conn: usize) -> Fault {
        self.faults.get(conn).copied().unwrap_or(Fault::None)
    }
}

/// Live proxy counters (monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Connections accepted by the proxy.
    pub connections: u64,
    /// Connections that had a non-[`Fault::None`] fault applied.
    pub faults_injected: u64,
    /// Client→server bytes forwarded.
    pub bytes_up: u64,
    /// Server→client bytes forwarded.
    pub bytes_down: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    faults_injected: AtomicU64,
    bytes_up: AtomicU64,
    bytes_down: AtomicU64,
}

/// A running chaos proxy. Dropping it shuts it down.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    counters: Arc<Counters>,
}

impl ChaosProxy {
    /// Binds a loopback port and starts relaying every accepted
    /// connection to `upstream`, applying `script` faults by connection
    /// index.
    pub fn spawn(upstream: SocketAddr, script: ChaosScript) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("jqi-chaos-accept".into())
                .spawn(move || {
                    let mut conn_index = 0usize;
                    for incoming in listener.incoming() {
                        if shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(client) = incoming else { continue };
                        let fault = script.fault_for(conn_index);
                        // Per-connection jitter stream: same (seed, index)
                        // → same delays, run after run.
                        let rng = splitmix(script.seed ^ (conn_index as u64).wrapping_mul(0x9e37));
                        conn_index += 1;
                        counters.connections.fetch_add(1, Ordering::Relaxed);
                        if fault != Fault::None {
                            counters.faults_injected.fetch_add(1, Ordering::Relaxed);
                        }
                        let shutdown = Arc::clone(&shutdown);
                        let counters = Arc::clone(&counters);
                        let _ = std::thread::Builder::new()
                            .name("jqi-chaos-conn".into())
                            .spawn(move || relay(client, upstream, fault, rng, shutdown, counters));
                    }
                })?
        };
        Ok(ChaosProxy {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            counters,
        })
    }

    /// The proxy's listening address — point clients here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the proxy counters.
    pub fn stats(&self) -> ChaosStats {
        ChaosStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            faults_injected: self.counters.faults_injected.load(Ordering::Relaxed),
            bytes_up: self.counters.bytes_up.load(Ordering::Relaxed),
            bytes_down: self.counters.bytes_down.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and joins the accept thread. Live relay threads
    /// notice the flag at their next 50 ms poll and exit.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("local_addr", &self.local_addr)
            .field("stats", &self.stats())
            .finish()
    }
}

/// One step of splitmix64 — enough RNG for deterministic jitter.
fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A seeded delay in `ms/2 ..= ms`.
fn jittered(ms: u64, rng: &mut u64) -> Duration {
    *rng = splitmix(*rng);
    let lo = ms / 2;
    Duration::from_millis(lo + *rng % (ms - lo + 1).max(1))
}

const POLL: Duration = Duration::from_millis(50);

/// Copies `src` → `dst` until EOF, error, or shutdown; counts into
/// `bytes`. Used unfaulted for the server→client direction.
fn pump_clean(
    mut src: TcpStream,
    mut dst: TcpStream,
    bytes: Arc<Counters>,
    down: bool,
    shutdown: Arc<AtomicBool>,
) {
    let _ = src.set_read_timeout(Some(POLL));
    let mut chunk = [0u8; 4096];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match src.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                if dst.write_all(&chunk[..n]).is_err() {
                    break;
                }
                let counter = if down {
                    &bytes.bytes_down
                } else {
                    &bytes.bytes_up
                };
                counter.fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// Relays one client connection through its fault.
fn relay(
    client: TcpStream,
    upstream_addr: SocketAddr,
    fault: Fault,
    mut rng: u64,
    shutdown: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    let Ok(upstream) = TcpStream::connect(upstream_addr) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = upstream.set_nodelay(true);
    if let Fault::Delay { ms } = fault {
        std::thread::sleep(jittered(ms, &mut rng));
    }

    // Downstream direction is always clean; the fault lives on the
    // client→server path.
    let down_thread = {
        let (src, dst) = (upstream.try_clone(), client.try_clone());
        let (counters, shutdown) = (Arc::clone(&counters), Arc::clone(&shutdown));
        std::thread::Builder::new()
            .name("jqi-chaos-down".into())
            .spawn(move || {
                if let (Ok(src), Ok(dst)) = (src, dst) {
                    pump_clean(src, dst, counters, true, shutdown);
                }
            })
    };

    let mut client = client;
    let mut upstream = upstream;
    let _ = client.set_read_timeout(Some(POLL));
    let mut forwarded = 0usize;
    let mut chunk = [0u8; 4096];
    'pump: loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let n = match client.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => break,
        };
        let segment = &chunk[..n];
        let write_ok = match fault {
            Fault::None | Fault::Delay { .. } => upstream.write_all(segment).is_ok(),
            Fault::Duplicate => {
                upstream.write_all(segment).is_ok() && upstream.write_all(segment).is_ok()
            }
            Fault::Truncate { bytes } => {
                let budget = bytes.saturating_sub(forwarded).min(n);
                let ok = upstream.write_all(&segment[..budget]).is_ok();
                if forwarded + n >= bytes {
                    // Budget spent: polite close of both sides.
                    break 'pump;
                }
                ok
            }
            Fault::Reset { after_bytes } => {
                let budget = after_bytes.saturating_sub(forwarded).min(n);
                let ok = upstream.write_all(&segment[..budget]).is_ok();
                if forwarded + n >= after_bytes {
                    hard_reset(&upstream);
                    break 'pump;
                }
                ok
            }
            Fault::Drip { chunk: piece, ms } => {
                let mut ok = true;
                for part in segment.chunks(piece.max(1)) {
                    if shutdown.load(Ordering::SeqCst) {
                        break 'pump;
                    }
                    if upstream.write_all(part).is_err() {
                        ok = false;
                        break;
                    }
                    std::thread::sleep(jittered(ms, &mut rng));
                }
                ok
            }
        };
        counters.bytes_up.fetch_add(n as u64, Ordering::Relaxed);
        forwarded += n;
        if !write_ok {
            break;
        }
    }
    let _ = upstream.shutdown(Shutdown::Both);
    let _ = client.shutdown(Shutdown::Both);
    if let Ok(thread) = down_thread {
        let _ = thread.join();
    }
}

/// Makes dropping `stream` send an RST instead of a FIN.
fn hard_reset(stream: &TcpStream) {
    #[cfg(target_os = "linux")]
    {
        use std::os::fd::AsRawFd;
        let _ = crate::sys::set_linger_zero(stream.as_raw_fd());
    }
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::server::{Handler, NetConfig, Server};
    use crate::wire::{Request, Response};
    use std::sync::Arc;

    fn echo() -> Server {
        let handler: Arc<dyn Handler> = Arc::new(|request: &Request| {
            Response::json(200, format!("{{\"len\": {}}}", request.body.len()))
        });
        Server::bind("127.0.0.1:0", handler, NetConfig::default()).expect("bind")
    }

    #[test]
    fn pass_through_relays_requests_untouched() {
        let mut server = echo();
        let mut proxy =
            ChaosProxy::spawn(server.local_addr(), ChaosScript::pass_through()).unwrap();
        let mut client = Client::connect(proxy.local_addr()).unwrap();
        for _ in 0..3 {
            let response = client.post("/x", "{\"a\": 1}").unwrap();
            assert_eq!(response.status, 200);
            assert_eq!(response.body_str().unwrap(), "{\"len\": 8}");
        }
        let stats = proxy.stats();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.faults_injected, 0);
        assert!(stats.bytes_up > 0 && stats.bytes_down > 0);
        proxy.shutdown();
        server.shutdown();
    }

    #[test]
    fn scripted_faults_hit_exactly_their_connection_index() {
        let mut server = echo();
        let script = ChaosScript {
            seed: 7,
            faults: vec![Fault::None, Fault::Truncate { bytes: 10 }],
        };
        let mut proxy = ChaosProxy::spawn(server.local_addr(), script).unwrap();

        // Connection 0: clean.
        let mut ok_client = Client::connect(proxy.local_addr()).unwrap();
        assert_eq!(ok_client.get("/fine").unwrap().status, 200);

        // Connection 1: truncated mid-head; the client sees the close.
        let mut cut_client = Client::connect(proxy.local_addr()).unwrap();
        assert!(cut_client.post("/x", "{\"a\": 1}").is_err());

        // Connection 2: past the script, clean again.
        let mut after = Client::connect(proxy.local_addr()).unwrap();
        assert_eq!(after.get("/fine").unwrap().status, 200);

        assert_eq!(proxy.stats().faults_injected, 1);
        assert_eq!(server.stats().protocol_errors, 1, "one truncated request");
        proxy.shutdown();
        server.shutdown();
    }

    #[test]
    fn duplicate_delivery_doubles_the_request() {
        let mut server = echo();
        let script = ChaosScript {
            seed: 3,
            faults: vec![Fault::Duplicate],
        };
        let mut proxy = ChaosProxy::spawn(server.local_addr(), script).unwrap();
        let mut client = Client::connect(proxy.local_addr()).unwrap();
        // The duplicated bytes are a second, identical pipelined request;
        // the server answers both, the client reads them in order.
        let first = client.post("/x", "{\"a\": 1}").unwrap();
        assert_eq!(first.status, 200);
        let second = client.get("/after").unwrap();
        assert_eq!(second.status, 200);
        assert_eq!(
            second.body_str().unwrap(),
            "{\"len\": 8}",
            "the duplicate of the first request answers before /after"
        );
        // Both requests were duplicated: 2 POSTs + 2 GETs reach the
        // server (the second GET's response may still be in flight).
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while server.stats().requests < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.stats().requests, 4, "every request arrived twice");
        proxy.shutdown();
        server.shutdown();
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let mut a = 42u64;
        let mut b = 42u64;
        let da: Vec<Duration> = (0..8).map(|_| jittered(100, &mut a)).collect();
        let db: Vec<Duration> = (0..8).map(|_| jittered(100, &mut b)).collect();
        assert_eq!(da, db);
        assert!(da
            .iter()
            .all(|d| (50..=100).contains(&(d.as_millis() as u64))));
        let mut c = 43u64;
        let dc: Vec<Duration> = (0..8).map(|_| jittered(100, &mut c)).collect();
        assert_ne!(da, dc, "different seeds, different streams");
    }
}
