//! The HTTP/1.1 wire codec: request/response types, a strict incremental
//! reader, and the response writer.
//!
//! The dialect is the small, well-behaved subset a JSON service needs —
//! `Content-Length`-framed bodies, keep-alive by default, no chunked
//! transfer coding (`Transfer-Encoding` is answered with `501`), no
//! continuation lines. Everything a client can get wrong maps to a
//! distinct [`HttpError`] so the connection loop can answer with the
//! right status code (or close silently for idle keep-alive timeouts)
//! — and never panic.

use std::io::{Read, Write};
use std::time::{Duration, Instant};

/// Hard ceilings the reader enforces while bytes arrive, so a misbehaving
/// peer cannot balloon memory before the service even sees the request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers (exceeding → `431`).
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length` (exceeding → `413`, body unread).
    pub max_body_bytes: usize,
    /// Wall-clock ceiling on reading one *started* message. The per-read
    /// socket timeout resets on every byte, so a slow-loris peer dripping
    /// one byte per poll could hold a worker forever; this bound caps the
    /// whole read (`408` once exceeded). `None` disables the check.
    pub max_read_time: Option<Duration>,
    /// Deadline granted to requests that carry no [`DEADLINE_HEADER`],
    /// measured from the first byte of the message. `None` means such
    /// requests never expire.
    pub default_deadline: Option<Duration>,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_head_bytes: 16 << 10,
            max_body_bytes: 1 << 20,
            max_read_time: Some(Duration::from_secs(30)),
            default_deadline: None,
        }
    }
}

/// The request header naming the client's deadline in milliseconds from
/// the moment the request started arriving. Once it lapses the client has
/// given up: the server abandons the work (before any durable append) and
/// answers `408`/`504` instead of computing an answer nobody reads.
pub const DEADLINE_HEADER: &str = "x-deadline-ms";

/// A parsed request head: everything up to (but not including) the
/// body. Produced by [`read_request_head`] so the server can run
/// admission control and deadline checks *after* the head is framed but
/// *before* the body transfer occupies the worker; [`read_request_body`]
/// turns it into a full [`Request`].
#[derive(Debug, Clone)]
pub struct RequestHead {
    /// The method verb, as sent (e.g. `GET`, `POST`, `DELETE`).
    pub method: String,
    /// The request target with any `?query` suffix stripped.
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased on parse.
    pub headers: Vec<(String, String)>,
    /// Whether the client asked for `Connection: close`.
    pub close: bool,
    /// When the client gives up on this request: parsed from
    /// [`DEADLINE_HEADER`], or [`Limits::default_deadline`] when absent.
    pub deadline: Option<Instant>,
    /// The declared `Content-Length` (0 when none was sent). The body
    /// may not have arrived yet.
    pub content_length: usize,
    /// When the first byte of the message arrived — the epoch for both
    /// the [`Limits::max_read_time`] budget and the deadline.
    started: Instant,
}

impl RequestHead {
    /// The first header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the request's deadline has already lapsed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// A synthetic head — for tests and admission-policy units that
    /// need a head without a wire read: `method` and `path` as given,
    /// no headers, no body, no deadline.
    pub fn synthetic(method: &str, path: &str) -> RequestHead {
        RequestHead {
            method: method.into(),
            path: path.into(),
            headers: vec![],
            close: false,
            deadline: None,
            content_length: 0,
            started: Instant::now(),
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb, as sent (e.g. `GET`, `POST`, `DELETE`).
    pub method: String,
    /// The request target with any `?query` suffix stripped.
    pub path: String,
    /// Header `(name, value)` pairs; names are lowercased on parse.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-framed body (empty when none was sent).
    pub body: Vec<u8>,
    /// Whether the client asked for `Connection: close`.
    pub close: bool,
    /// When the client gives up on this request: parsed from
    /// [`DEADLINE_HEADER`], or [`Limits::default_deadline`] when absent.
    /// `None` means the request never expires.
    pub deadline: Option<Instant>,
}

impl Request {
    /// The first header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the request's deadline has already lapsed.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Time left until the deadline (`None` when there is no deadline;
    /// zero once it lapsed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// The body as UTF-8 text.
    pub fn body_str(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }
}

/// An HTTP response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// The status code (reason phrase derived via [`reason`]).
    pub status: u16,
    /// Extra headers (`Content-Length` and `Connection` are emitted by the
    /// writer; don't add them here).
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
    /// Ask the connection loop to close after this response.
    pub close: bool,
}

impl Response {
    /// A JSON response with `Content-Type: application/json`.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.into_bytes(),
            close: false,
        }
    }

    /// Marks the response as connection-closing and returns it.
    pub fn closing(mut self) -> Response {
        self.close = true;
        self
    }
}

/// The canonical reason phrase for the status codes this stack emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Everything that can go wrong while reading one request (or response).
///
/// The connection loop turns each variant into the right close/answer
/// behavior — see [`HttpError::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Clean EOF before the first byte of a message: the peer hung up
    /// between requests. Not an error worth answering — just close.
    Closed,
    /// The read timed out before the first byte of a message arrived
    /// (an idle keep-alive connection). Close silently.
    IdleTimeout,
    /// The read timed out *mid-message* — head or body started but never
    /// finished. Answer `408` and close.
    Timeout,
    /// The request's own deadline ([`DEADLINE_HEADER`] or
    /// [`Limits::default_deadline`]) lapsed while the body was still
    /// arriving. Purely client-caused — the peer spent its whole budget
    /// on the upload — so it is answered `504` and accounted as a lapsed
    /// deadline, never as a protocol error.
    DeadlineLapsed,
    /// EOF mid-message: the peer promised more bytes (by `Content-Length`
    /// or an unfinished head) and hung up. Answer `400` and close.
    Truncated,
    /// The head is not parseable HTTP/1.1. Answer `400` and close.
    Malformed(String),
    /// The head exceeded [`Limits::max_head_bytes`]. Answer `431`.
    HeadTooLarge,
    /// The declared body exceeds [`Limits::max_body_bytes`]; the body is
    /// left unread. Answer `413` and close.
    BodyTooLarge,
    /// A framing the stack deliberately does not speak (chunked
    /// transfer coding). Answer `501` and close.
    Unsupported(String),
    /// The peer reset the connection (RST, aborted, broken pipe). Close
    /// silently — there is nobody left to answer.
    Reset,
    /// An underlying socket error (anything else). Close.
    Io(String),
}

impl HttpError {
    /// The status code to answer with, or `None` when the connection
    /// should close without a response.
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Closed | HttpError::IdleTimeout | HttpError::Reset | HttpError::Io(_) => {
                None
            }
            HttpError::Timeout => Some(408),
            HttpError::DeadlineLapsed => Some(504),
            HttpError::Truncated | HttpError::Malformed(_) => Some(400),
            HttpError::HeadTooLarge => Some(431),
            HttpError::BodyTooLarge => Some(413),
            HttpError::Unsupported(_) => Some(501),
        }
    }

    /// A short machine-readable code for the error body.
    pub fn code(&self) -> &'static str {
        match self {
            HttpError::Closed => "closed",
            HttpError::IdleTimeout => "idle_timeout",
            HttpError::Timeout => "request_timeout",
            HttpError::DeadlineLapsed => "deadline_exceeded",
            HttpError::Truncated => "truncated_request",
            HttpError::Malformed(_) => "malformed_request",
            HttpError::HeadTooLarge => "head_too_large",
            HttpError::BodyTooLarge => "body_too_large",
            HttpError::Unsupported(_) => "not_implemented",
            HttpError::Reset => "peer_reset",
            HttpError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::IdleTimeout => write!(f, "idle keep-alive timeout"),
            HttpError::Timeout => write!(f, "timed out mid-request"),
            HttpError::DeadlineLapsed => {
                write!(f, "request deadline lapsed while the body was arriving")
            }
            HttpError::Truncated => write!(f, "peer hung up mid-request"),
            HttpError::Malformed(detail) => write!(f, "malformed request: {detail}"),
            HttpError::HeadTooLarge => write!(f, "request head exceeds the limit"),
            HttpError::BodyTooLarge => write!(f, "request body exceeds the limit"),
            HttpError::Unsupported(what) => write!(f, "unsupported: {what}"),
            HttpError::Reset => write!(f, "connection reset by peer"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Classifies one `read` outcome.
fn read_some(stream: &mut impl Read, buf: &mut Vec<u8>) -> Result<usize, HttpError> {
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(0),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                return Ok(n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HttpError::Timeout)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                        | std::io::ErrorKind::BrokenPipe
                ) =>
            {
                return Err(HttpError::Reset)
            }
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Reads one full request from `stream`, buffering through `buf`.
///
/// `buf` carries leftover bytes between calls (a pipelining client may
/// deliver the next request's head behind this one's body); the parsed
/// message is drained from its front. Timeouts come from the stream's
/// own `read_timeout`; which [`HttpError`] a timeout maps to depends on
/// whether the message had started.
///
/// Composes [`read_request_head`] + [`read_request_body`]; callers that
/// need to decide anything *between* the head and the body (admission
/// control, deadline checks) call the halves themselves.
pub fn read_request(
    stream: &mut impl Read,
    buf: &mut Vec<u8>,
    limits: &Limits,
) -> Result<Request, HttpError> {
    let head = read_request_head(stream, buf, limits)?;
    read_request_body(stream, buf, head, limits)
}

/// Reads and parses one request head from `stream` (buffering through
/// `buf` like [`read_request`]), leaving the body — which may not have
/// arrived yet — unread. The head's bytes are drained from `buf`; any
/// body bytes the transport delivered alongside them stay at the front.
pub fn read_request_head(
    stream: &mut impl Read,
    buf: &mut Vec<u8>,
    limits: &Limits,
) -> Result<RequestHead, HttpError> {
    let started = Instant::now();
    // The anti-drip bound: the socket timeout resets with every byte, so
    // a peer feeding one byte per poll would otherwise never trip it.
    let overdue = || {
        limits
            .max_read_time
            .is_some_and(|cap| started.elapsed() > cap)
    };
    // Phase 1: accumulate until the blank line ends the head.
    let head_end = loop {
        if let Some(end) = find_head_end(buf) {
            if end > limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge);
            }
            break end;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
        if !buf.is_empty() && overdue() {
            return Err(HttpError::Timeout);
        }
        match read_some(stream, buf) {
            Ok(0) if buf.is_empty() => return Err(HttpError::Closed),
            Ok(0) => return Err(HttpError::Truncated),
            Ok(_) => {}
            Err(HttpError::Timeout) if buf.is_empty() => return Err(HttpError::IdleTimeout),
            Err(e) => return Err(e),
        }
    };

    // Phase 2: parse the head.
    let head = std::str::from_utf8(&buf[..head_end - 4])
        .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty() && m.bytes().all(|b| b.is_ascii_uppercase()))
        .ok_or_else(|| HttpError::Malformed(format!("bad request line {request_line:?}")))?
        .to_string();
    let target = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or_else(|| HttpError::Malformed(format!("bad request target in {request_line:?}")))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        if name.is_empty() || name.ends_with(' ') || name.ends_with('\t') {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers.iter().any(|(n, _)| n == "transfer-encoding") {
        return Err(HttpError::Unsupported("chunked transfer coding".into()));
    }
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    // HTTP/1.0 closes by default; 1.1 keeps alive unless asked otherwise.
    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let close = match connection.as_deref() {
        Some("close") => true,
        Some("keep-alive") => false,
        _ => version == "HTTP/1.0",
    };

    // The client's deadline, measured from the first byte of the message
    // so drip-fed uploads spend their own budget.
    let deadline = match headers.iter().find(|(n, _)| n == DEADLINE_HEADER) {
        Some((_, v)) => {
            let ms = v
                .parse::<u64>()
                .map_err(|_| HttpError::Malformed(format!("bad {DEADLINE_HEADER} {v:?}")))?;
            Some(started + Duration::from_millis(ms))
        }
        None => limits.default_deadline.map(|d| started + d),
    };

    buf.drain(..head_end);
    Ok(RequestHead {
        method,
        path,
        headers,
        close,
        deadline,
        content_length,
        started,
    })
}

/// Reads the body promised by `head` — exactly `content_length` bytes —
/// and assembles the full [`Request`]. A deadline lapsing during the
/// transfer is [`HttpError::DeadlineLapsed`] (`504`, the client spent
/// its own budget), distinct from the server's read-time budget lapsing
/// ([`HttpError::Timeout`], `408`).
pub fn read_request_body(
    stream: &mut impl Read,
    buf: &mut Vec<u8>,
    head: RequestHead,
    limits: &Limits,
) -> Result<Request, HttpError> {
    let overdue = || {
        limits
            .max_read_time
            .is_some_and(|cap| head.started.elapsed() > cap)
    };
    let lapsed = || head.deadline.is_some_and(|d| Instant::now() >= d);
    while buf.len() < head.content_length {
        if lapsed() {
            return Err(HttpError::DeadlineLapsed);
        }
        if overdue() {
            return Err(HttpError::Timeout);
        }
        match read_some(stream, buf) {
            Ok(0) => return Err(HttpError::Truncated),
            Ok(_) => {}
            // A stalled transfer surfaces as the socket timeout; when
            // the request's own deadline lapsed while we waited, that —
            // not the server's read budget — is the story to tell.
            Err(HttpError::Timeout) if lapsed() => return Err(HttpError::DeadlineLapsed),
            Err(e) => return Err(e),
        }
    }
    let body = buf[..head.content_length].to_vec();
    buf.drain(..head.content_length);

    Ok(Request {
        method: head.method,
        path: head.path,
        headers: head.headers,
        body,
        close: head.close,
        deadline: head.deadline,
    })
}

/// Writes `response` (status line, headers, framed body) to `stream`.
pub fn write_response(stream: &mut impl Write, response: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-length: {}\r\n",
        response.status,
        reason(response.status),
        response.body.len()
    );
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if response.close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// A parsed HTTP response (the client half of the codec).
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length`-framed body.
    pub body: Vec<u8>,
    /// Whether the server asked to close the connection.
    pub close: bool,
}

impl ClientResponse {
    /// The body as UTF-8 text.
    pub fn body_str(&self) -> Result<&str, std::str::Utf8Error> {
        std::str::from_utf8(&self.body)
    }
}

/// Reads one full response from `stream`, buffering through `buf` exactly
/// like [`read_request`].
pub fn read_client_response(
    stream: &mut impl Read,
    buf: &mut Vec<u8>,
    limits: &Limits,
) -> Result<ClientResponse, HttpError> {
    let head_end = loop {
        if let Some(end) = find_head_end(buf) {
            break end;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(HttpError::HeadTooLarge);
        }
        match read_some(stream, buf) {
            Ok(0) if buf.is_empty() => return Err(HttpError::Closed),
            Ok(0) => return Err(HttpError::Truncated),
            Ok(_) => {}
            Err(HttpError::Timeout) if buf.is_empty() => return Err(HttpError::IdleTimeout),
            Err(e) => return Err(e),
        }
    };
    let head = std::str::from_utf8(&buf[..head_end - 4])
        .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or_default();
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .filter(|_| version.starts_with("HTTP/1."))
        .ok_or_else(|| HttpError::Malformed(format!("bad status line {status_line:?}")))?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge);
    }
    let close = headers
        .iter()
        .any(|(n, v)| n == "connection" && v.eq_ignore_ascii_case("close"));
    while buf.len() < head_end + content_length {
        match read_some(stream, buf) {
            Ok(0) => return Err(HttpError::Truncated),
            Ok(_) => {}
            Err(e) => return Err(e),
        }
    }
    let body = buf[head_end..head_end + content_length].to_vec();
    buf.drain(..head_end + content_length);
    Ok(ClientResponse {
        status,
        headers,
        body,
        close,
    })
}

/// Formats one request head + body the server-side reader accepts.
pub fn format_request(method: &str, path: &str, body: Option<&[u8]>, close: bool) -> Vec<u8> {
    format_request_with(method, path, body, close, &[])
}

/// [`format_request`] with extra `(name, value)` headers (e.g. the
/// [`DEADLINE_HEADER`]).
pub fn format_request_with(
    method: &str,
    path: &str,
    body: Option<&[u8]>,
    close: bool,
    extra: &[(String, String)],
) -> Vec<u8> {
    let mut out = format!("{method} {path} HTTP/1.1\r\nhost: localhost\r\n");
    for (name, value) in extra {
        out.push_str(&format!("{name}: {value}\r\n"));
    }
    if let Some(body) = body {
        out.push_str("content-type: application/json\r\n");
        out.push_str(&format!("content-length: {}\r\n", body.len()));
    }
    if close {
        out.push_str("connection: close\r\n");
    }
    out.push_str("\r\n");
    let mut bytes = out.into_bytes();
    if let Some(body) = body {
        bytes.extend_from_slice(body);
    }
    bytes
}

/// A default per-read socket timeout tuned for a local service: long
/// enough for a slow client, short enough that a stuck worker frees
/// itself.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(bytes: &[u8]) -> Result<Request, HttpError> {
        let mut cursor = Cursor::new(bytes.to_vec());
        let mut buf = Vec::new();
        read_request(&mut cursor, &mut buf, &Limits::default())
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = parse(b"GET /v1/stats?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/stats");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
        assert!(!req.close);
    }

    #[test]
    fn parses_a_post_with_content_length_body() {
        let req = parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 11\r\nConnection: close\r\n\r\nhello world",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"hello world");
        assert!(req.close);
    }

    #[test]
    fn pipelined_requests_stay_in_the_buffer() {
        let bytes = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n".to_vec();
        let mut cursor = Cursor::new(bytes);
        let mut buf = Vec::new();
        let limits = Limits::default();
        let a = read_request(&mut cursor, &mut buf, &limits).unwrap();
        assert_eq!(a.path, "/a");
        assert!(!buf.is_empty(), "second request should be buffered");
        let b = read_request(&mut cursor, &mut buf, &limits).unwrap();
        assert_eq!(b.path, "/b");
        assert!(buf.is_empty());
    }

    #[test]
    fn classifies_malformed_heads() {
        for (bytes, want_code) in [
            (&b"NOT-HTTP\r\n\r\n"[..], "malformed_request"),
            (b"GET /x\r\n\r\n", "malformed_request"),
            (b"get /x HTTP/1.1\r\n\r\n", "malformed_request"),
            (b"GET /x SPDY/3\r\n\r\n", "malformed_request"),
            (b"GET /x HTTP/1.1\r\nno-colon\r\n\r\n", "malformed_request"),
            (
                b"POST /x HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
                "malformed_request",
            ),
            (
                b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
                "not_implemented",
            ),
        ] {
            let err = parse(bytes).unwrap_err();
            assert_eq!(err.code(), want_code, "for {bytes:?}");
            assert!(err.status().is_some());
        }
    }

    #[test]
    fn eof_before_and_mid_message_are_distinct() {
        assert_eq!(parse(b"").unwrap_err(), HttpError::Closed);
        assert_eq!(parse(b"GET /x HT").unwrap_err(), HttpError::Truncated);
        // Body shorter than the declared length.
        assert_eq!(
            parse(b"POST /x HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort").unwrap_err(),
            HttpError::Truncated
        );
    }

    #[test]
    fn limits_are_enforced_before_reading_bodies() {
        let limits = Limits {
            max_head_bytes: 64,
            max_body_bytes: 16,
            ..Limits::default()
        };
        let mut buf = Vec::new();
        let big_head = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(100));
        let err = read_request(&mut Cursor::new(big_head.into_bytes()), &mut buf, &limits);
        assert_eq!(err.unwrap_err(), HttpError::HeadTooLarge);
        buf.clear();
        // The oversized body is rejected from the header alone; its bytes
        // are never awaited.
        let err = read_request(
            &mut Cursor::new(b"POST /x HTTP/1.1\r\ncontent-length: 1000000\r\n\r\n".to_vec()),
            &mut buf,
            &limits,
        );
        assert_eq!(err.unwrap_err(), HttpError::BodyTooLarge);
    }

    #[test]
    fn response_round_trips_through_the_client_reader() {
        let response = Response::json(201, "{\"ok\": true}".into());
        let mut wire = Vec::new();
        write_response(&mut wire, &response).unwrap();
        let mut buf = Vec::new();
        let parsed =
            read_client_response(&mut Cursor::new(wire), &mut buf, &Limits::default()).unwrap();
        assert_eq!(parsed.status, 201);
        assert_eq!(parsed.body, b"{\"ok\": true}");
        assert!(!parsed.close);
    }

    #[test]
    fn http_10_and_connection_headers_drive_keep_alive() {
        let req = parse(b"GET /x HTTP/1.0\r\n\r\n").unwrap();
        assert!(req.close, "HTTP/1.0 defaults to close");
        let req = parse(b"GET /x HTTP/1.0\r\nconnection: keep-alive\r\n\r\n").unwrap();
        assert!(!req.close);
        let req = parse(b"GET /x HTTP/1.1\r\nconnection: close\r\n\r\n").unwrap();
        assert!(req.close);
    }

    #[test]
    fn deadline_header_and_default_deadline_populate_the_request() {
        let req = parse(b"GET /x HTTP/1.1\r\nx-deadline-ms: 250\r\n\r\n").unwrap();
        let remaining = req.remaining().expect("deadline set");
        assert!(remaining <= Duration::from_millis(250));
        assert!(!req.expired());

        // No header, no default: never expires.
        let req = parse(b"GET /x HTTP/1.1\r\n\r\n").unwrap();
        assert!(req.deadline.is_none() && req.remaining().is_none());

        // No header, but a per-Limits default.
        let limits = Limits {
            default_deadline: Some(Duration::from_secs(5)),
            ..Limits::default()
        };
        let mut buf = Vec::new();
        let req = read_request(
            &mut Cursor::new(b"GET /x HTTP/1.1\r\n\r\n".to_vec()),
            &mut buf,
            &limits,
        )
        .unwrap();
        assert!(req.deadline.is_some());

        // An already-lapsed deadline parses but reports expired.
        let req = parse(b"GET /x HTTP/1.1\r\nx-deadline-ms: 0\r\n\r\n").unwrap();
        assert!(req.expired());
        assert_eq!(req.remaining(), Some(Duration::ZERO));

        // A garbage value is a malformed request, not a panic.
        let err = parse(b"GET /x HTTP/1.1\r\nx-deadline-ms: soon\r\n\r\n").unwrap_err();
        assert_eq!(err.code(), "malformed_request");
    }

    #[test]
    fn head_and_body_halves_compose_and_split_at_the_body_boundary() {
        let bytes = b"POST /x HTTP/1.1\r\ncontent-length: 5\r\n\r\nhelloGET /next HTTP/1.1\r\n\r\n";
        let mut cursor = Cursor::new(bytes.to_vec());
        let mut buf = Vec::new();
        let limits = Limits::default();
        let head = read_request_head(&mut cursor, &mut buf, &limits).unwrap();
        assert_eq!(head.method, "POST");
        assert_eq!(head.path, "/x");
        assert_eq!(head.content_length, 5);
        assert!(!head.expired());
        // The head is drained; the body (and the pipelined follower)
        // wait at the front of the buffer.
        assert!(buf.starts_with(b"hello"));
        let req = read_request_body(&mut cursor, &mut buf, head, &limits).unwrap();
        assert_eq!(req.body, b"hello");
        let next = read_request(&mut cursor, &mut buf, &limits).unwrap();
        assert_eq!(next.path, "/next");
    }

    #[test]
    fn a_deadline_lapsing_mid_body_is_504_not_408() {
        // The head arrives whole with a 20 ms deadline and a 1000-byte
        // promise; the body then drips too slowly to ever finish.
        struct SlowBody {
            sent_head: bool,
        }
        impl Read for SlowBody {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if !self.sent_head {
                    self.sent_head = true;
                    let head =
                        b"POST /x HTTP/1.1\r\nx-deadline-ms: 20\r\ncontent-length: 1000\r\n\r\n";
                    out[..head.len()].copy_from_slice(head);
                    return Ok(head.len());
                }
                std::thread::sleep(Duration::from_millis(5));
                out[0] = b'x';
                Ok(1)
            }
        }
        let mut buf = Vec::new();
        let err = read_request(
            &mut SlowBody { sent_head: false },
            &mut buf,
            &Limits::default(),
        )
        .unwrap_err();
        assert_eq!(err, HttpError::DeadlineLapsed);
        assert_eq!(err.status(), Some(504));
        assert_eq!(err.code(), "deadline_exceeded");
    }

    #[test]
    fn reset_maps_to_a_silent_close() {
        struct ResetStream;
        impl Read for ResetStream {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::ErrorKind::ConnectionReset.into())
            }
        }
        let mut buf = Vec::new();
        let err = read_request(&mut ResetStream, &mut buf, &Limits::default()).unwrap_err();
        assert_eq!(err, HttpError::Reset);
        assert_eq!(err.status(), None, "nobody left to answer");
        assert_eq!(err.code(), "peer_reset");
    }

    #[test]
    fn a_drip_fed_head_is_cut_off_at_the_read_time_cap() {
        // A reader that yields one byte per call, forever — the socket
        // timeout would never fire because every read makes progress.
        struct Drip {
            data: &'static [u8],
            at: usize,
        }
        impl Read for Drip {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                std::thread::sleep(Duration::from_millis(2));
                let b = self.data[self.at % self.data.len()];
                self.at += 1;
                out[0] = b;
                Ok(1)
            }
        }
        let limits = Limits {
            max_read_time: Some(Duration::from_millis(30)),
            ..Limits::default()
        };
        let mut buf = Vec::new();
        let started = Instant::now();
        let err = read_request(
            &mut Drip {
                data: b"GET /x HTTP/1.1\r\nx-pad: aaaaaaaa",
                at: 0,
            },
            &mut buf,
            &limits,
        )
        .unwrap_err();
        assert_eq!(err, HttpError::Timeout, "dripper must be cut off");
        assert!(started.elapsed() < Duration::from_secs(5), "and promptly");
    }

    #[test]
    fn format_request_with_carries_extra_headers() {
        let bytes = format_request_with(
            "GET",
            "/x",
            None,
            false,
            &[("x-deadline-ms".into(), "100".into())],
        );
        let req = parse(&bytes).unwrap();
        assert_eq!(req.header("x-deadline-ms"), Some("100"));
        assert!(req.deadline.is_some());
    }

    #[test]
    fn format_request_is_readable_by_the_server_side() {
        let bytes = format_request("POST", "/v1/x", Some(b"{\"a\":1}"), false);
        let req = parse(&bytes).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/x");
        assert_eq!(req.body, b"{\"a\":1}");
    }
}
