//! The one FFI corner of the crate: a minimal safe wrapper over Linux
//! `epoll`.
//!
//! The build container has no crates.io access, so the usual `libc`/`mio`
//! route is closed; instead the four syscall wrappers the reactor needs
//! (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `close`) are declared
//! directly against the C library the Rust standard library already
//! links. This module is the only `unsafe` in the crate, and every call
//! is wrapped in a method that upholds the invariants (`Epoll` owns its
//! fd; event buffers are sized by the caller's `Vec` capacity).

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;

/// Readable readiness.
pub const EPOLLIN: u32 = 0x001;
/// One-shot arming: the fd reports at most one event until re-armed with
/// [`Epoll::rearm`] — the hand-off discipline between the event loop and
/// the worker pool.
pub const EPOLLONESHOT: u32 = 1 << 30;
/// Peer hang-up.
pub const EPOLLHUP: u32 = 0x010;
/// Error condition.
pub const EPOLLERR: u32 = 0x008;

const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

/// `struct epoll_event`. Packed on x86-64 (glibc's `__EPOLL_PACKED`),
/// natural alignment elsewhere — mirror the kernel ABI exactly.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event mask (`EPOLLIN` | …).
    pub events: u32,
    /// The caller's token (we store the connection id).
    pub data: u64,
}

/// `struct linger` as the kernel expects it for `SO_LINGER`.
#[repr(C)]
struct CLinger {
    l_onoff: c_int,
    l_linger: c_int,
}

const SOL_SOCKET: c_int = 1;
const SO_LINGER: c_int = 13;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const CLinger,
        optlen: u32,
    ) -> c_int;
}

/// Arms `SO_LINGER { on, 0s }` on a socket so the eventual close sends an
/// RST instead of the orderly FIN — the chaos proxy's "peer reset" fault.
pub fn set_linger_zero(fd: RawFd) -> io::Result<()> {
    let linger = CLinger {
        l_onoff: 1,
        l_linger: 0,
    };
    let rc = unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_LINGER,
            &linger,
            std::mem::size_of::<CLinger>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// An owned epoll instance.
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Epoll> {
        // O_CLOEXEC == 0o2000000 on every Linux ABI.
        let fd = unsafe { epoll_create1(0o2000000) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` one-shot for readable readiness under `token`.
    pub fn add(&self, fd: RawFd, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, EPOLLIN | EPOLLONESHOT, token)
    }

    /// Re-arms an fd consumed by a one-shot event.
    pub fn rearm(&self, fd: RawFd, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, EPOLLIN | EPOLLONESHOT, token)
    }

    /// Removes `fd` from the interest list (closing the fd does this too;
    /// explicit removal keeps the accounting obvious).
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` for events, filling `events` up to its
    /// capacity; returns how many fired. `EINTR` retries internally.
    pub fn wait(&self, events: &mut Vec<EpollEvent>, timeout_ms: i32) -> io::Result<usize> {
        let capacity = events.capacity().max(1) as c_int;
        events.clear();
        loop {
            let rc = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), capacity, timeout_ms) };
            if rc >= 0 {
                // epoll_wait wrote `rc` events into the buffer.
                unsafe { events.set_len(rc as usize) };
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readability_once_per_arm() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        let epoll = Epoll::new().unwrap();
        epoll.add(server_side.as_raw_fd(), 42).unwrap();

        let mut events = Vec::with_capacity(8);
        // Nothing readable yet.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);
        let fired = events[0];
        assert_eq!({ fired.data }, 42);
        assert_ne!({ fired.events } & EPOLLIN, 0);

        // One-shot: without a rearm the fd stays silent even though the
        // bytes were never read.
        assert_eq!(epoll.wait(&mut events, 50).unwrap(), 0);
        epoll.rearm(server_side.as_raw_fd(), 42).unwrap();
        assert_eq!(epoll.wait(&mut events, 1000).unwrap(), 1);

        epoll.del(server_side.as_raw_fd()).unwrap();
    }
}
