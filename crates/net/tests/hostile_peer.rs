//! Hostile-peer patterns against the real server: slow-loris drip,
//! one-byte-at-a-time bodies, mid-body resets, pipelined garbage.
//!
//! The invariant under test is always the same: a misbehaving peer gets
//! a clean error status or a silent close, *within* the transport's
//! read-time budget — never a worker wedged past it. Every test ends by
//! proving a fresh well-behaved request still answers promptly.

use jqi_net::{
    ChaosProxy, ChaosScript, Client, Fault, Handler, Limits, NetConfig, Request, Response, Server,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A tight config: 2 workers, a 300 ms whole-read budget, 1 s socket
/// timeout. Hostile peers must be cut loose on the budget, not the
/// socket timeout.
fn tight_server() -> Server {
    let handler: Arc<dyn Handler> = Arc::new(|request: &Request| {
        Response::json(200, format!("{{\"len\": {}}}", request.body.len()))
    });
    let config = NetConfig {
        workers: 2,
        read_timeout: Duration::from_secs(1),
        limits: Limits {
            max_read_time: Some(Duration::from_millis(300)),
            ..Limits::default()
        },
        ..NetConfig::default()
    };
    Server::bind("127.0.0.1:0", handler, config).expect("loopback bind")
}

/// The post-abuse health check: a fresh request answers fast.
fn assert_still_prompt(server: &Server) {
    let started = Instant::now();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let response = client.get("/health").unwrap();
    assert_eq!(response.status, 200);
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "a well-behaved request took {:?} after the abuse",
        started.elapsed()
    );
}

#[test]
fn slow_loris_header_drip_is_cut_off_with_408() {
    let mut server = tight_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    // Drip a plausible header forever, one byte per 20 ms. The server
    // must cut us off at its 300 ms read budget, not at header
    // completion (which would never come).
    let head = b"GET /loris HTTP/1.1\r\nx-padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
    let mut answered = String::new();
    for &b in head.iter().cycle().take(200) {
        if stream.write_all(&[b]).is_err() {
            break; // server already hung up — fine
        }
        std::thread::sleep(Duration::from_millis(20));
        if started.elapsed() > Duration::from_secs(3) {
            break;
        }
        // Poll for an early answer without blocking the drip loop.
        stream
            .set_read_timeout(Some(Duration::from_millis(1)))
            .unwrap();
        let mut chunk = [0u8; 512];
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                answered.push_str(&String::from_utf8_lossy(&chunk[..n]));
                break;
            }
            Err(_) => {}
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "the dripper was not cut off in time"
    );
    if !answered.is_empty() {
        assert!(answered.starts_with("HTTP/1.1 408"), "got {answered:?}");
    }
    let stats = server.stats();
    assert_eq!(stats.protocol_errors, 1, "the drip is one protocol error");
    assert_eq!(stats.requests, 0);
    assert_still_prompt(&server);
    server.shutdown();
}

#[test]
fn one_byte_at_a_time_body_within_budget_succeeds() {
    let mut server = tight_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let body = b"0123456789";
    stream
        .write_all(
            format!(
                "POST /slow HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    // 10 bytes at 10 ms each ≈ 100 ms: slow, but inside the 300 ms
    // budget — the server must wait it out and answer 200.
    for &b in body {
        stream.write_all(&[b]).unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200"), "got {response:?}");
    assert!(response.contains("\"len\": 10"));
    server.shutdown();
}

#[test]
fn a_body_drip_past_the_budget_gets_408() {
    let mut server = tight_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"POST /drip HTTP/1.1\r\ncontent-length: 1000\r\n\r\n")
        .unwrap();
    let started = Instant::now();
    let mut response = String::new();
    // Drip one body byte per 40 ms against a declared 1000-byte body:
    // the 300 ms budget lapses ~8 bytes in.
    for _ in 0..100 {
        if stream.write_all(b"x").is_err() {
            break;
        }
        std::thread::sleep(Duration::from_millis(40));
        stream
            .set_read_timeout(Some(Duration::from_millis(1)))
            .unwrap();
        let mut chunk = [0u8; 512];
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                response.push_str(&String::from_utf8_lossy(&chunk[..n]));
                break;
            }
            Err(_) => {}
        }
        if started.elapsed() > Duration::from_secs(3) {
            break;
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "the body dripper was not cut off in time"
    );
    if !response.is_empty() {
        assert!(response.starts_with("HTTP/1.1 408"), "got {response:?}");
    }
    assert_still_prompt(&server);
    server.shutdown();
}

#[test]
fn mid_body_reset_is_counted_and_survived() {
    let mut server = tight_server();
    // Route the abuse through the chaos proxy: connection 0 forwards 30
    // bytes of the request (the head starts, the body never finishes)
    // and then hard-resets the server side.
    let script = ChaosScript {
        seed: 11,
        faults: vec![Fault::Reset { after_bytes: 30 }],
    };
    let mut proxy = ChaosProxy::spawn(server.local_addr(), script).unwrap();
    let mut client = Client::connect(proxy.local_addr()).unwrap();
    let _ = client.post("/reset-me", "{\"payload\": \"xxxxxxxxxxxxxxxxxxxx\"}");
    // The server saw either an RST mid-message (peer_reset) or, if the
    // kernel flushed the FIN first, a truncated message — never a wedge.
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        let stats = server.stats();
        if stats.peer_resets + stats.protocol_errors >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = server.stats();
    assert!(
        stats.peer_resets + stats.protocol_errors >= 1,
        "the aborted request must be accounted somewhere: {stats:?}"
    );
    assert_eq!(stats.requests, 0, "the truncated request never ran");
    assert_still_prompt(&server);
    proxy.shutdown();
    server.shutdown();
}

#[test]
fn pipelined_garbage_after_a_valid_request_answers_then_closes() {
    let mut server = tight_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // One valid request with garbage pipelined behind it, in one write.
    stream
        .write_all(b"GET /ok HTTP/1.1\r\n\r\n\x00\xff GARBAGE NOT HTTP\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "the valid request answers first: {response:?}"
    );
    let tail = &response[response.find("HTTP/1.1 400").unwrap_or(response.len())..];
    assert!(
        tail.starts_with("HTTP/1.1 400"),
        "the garbage gets 400 + close: {response:?}"
    );
    assert!(tail.contains("malformed_request"));
    let stats = server.stats();
    assert_eq!(stats.requests, 1);
    assert_eq!(stats.protocol_errors, 1);
    assert_still_prompt(&server);
    server.shutdown();
}

#[test]
fn a_drip_fed_request_never_wedges_workers_past_the_budget() {
    let mut server = tight_server();
    let addr = server.local_addr();
    // Saturate both workers with drippers, then demand prompt service.
    let drippers: Vec<_> = (0..2)
        .map(|_| {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(b"GET /wedge HTTP/1.1\r\nx-s").unwrap();
            stream
        })
        .collect();
    // Give the event loop a moment to hand both to workers.
    std::thread::sleep(Duration::from_millis(50));
    // Both workers are now blocked reading — but only until the 300 ms
    // budget (+ the 1 s socket timeout at worst) lapses.
    let started = Instant::now();
    let mut client = Client::connect_with_timeout(addr, Duration::from_secs(5)).unwrap();
    let response = client.get("/after-the-drips").unwrap();
    assert_eq!(response.status, 200);
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "workers stayed wedged for {:?}",
        started.elapsed()
    );
    drop(drippers);
    server.shutdown();
}
